// Tests of the execution-timeline recorder (DESIGN.md §12): ring
// wraparound/overflow accounting, fold determinism, byte-identical sim
// timelines, Chrome-trace export validity on a live parallel engine, and a
// concurrency hammer (worker threads recording while the driver takes
// flight snapshots) for the tsan preset.

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "harness/runner.h"
#include "obs/timeline/timeline.h"
#include "runtime/timeline.h"

namespace bistream {
namespace {

using runtime::TimelineEventType;

BicliqueOptions SmallEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  return options;
}

SyntheticWorkloadOptions SmallWorkload(uint64_t total_tuples) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 200;
  workload.rate_r = RateSchedule::Constant(1000);
  workload.rate_s = RateSchedule::Constant(1000);
  workload.total_tuples = total_tuples;
  workload.seed = 977;
  return workload;
}

TEST(TimelineRecorderTest, RingWrapRetainsNewestAndCountsDrops) {
  TimelineRecorder::Options options;
  options.ring_capacity = 8;
  TimelineRecorder recorder(options);
  for (uint64_t i = 0; i < 20; ++i) {
    recorder.Record(TimelineEventType::kPunctRound, /*at=*/i, /*lane=*/0,
                    /*arg=*/i);
  }
  std::vector<TimelineEvent> events = recorder.Fold();
  ASSERT_EQ(events.size(), 8u);
  // The ring always wraps, retaining the newest `capacity` events.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].at, 12 + i);
    EXPECT_EQ(events[i].arg, 12 + i);
  }
  EXPECT_EQ(recorder.events_recorded(), 20u);
  EXPECT_EQ(recorder.events_dropped(), 12u);
  ASSERT_EQ(recorder.ring_hwms().size(), 1u);
  EXPECT_EQ(recorder.ring_hwms()[0], 8u);
}

TEST(TimelineRecorderTest, NoWrapMeansNoDrops) {
  TimelineRecorder recorder(TimelineRecorder::Options{});
  for (uint64_t i = 0; i < 100; ++i) {
    recorder.Record(TimelineEventType::kTaskBegin, i, 0, 0);
  }
  EXPECT_EQ(recorder.events_recorded(), 100u);
  EXPECT_EQ(recorder.events_dropped(), 0u);
  EXPECT_EQ(recorder.Fold().size(), 100u);
}

TEST(TimelineRecorderTest, FoldIsDeterministicAcrossCalls) {
  TimelineRecorder recorder(TimelineRecorder::Options{});
  // Record from several threads: per-thread rings, interleaved arbitrarily.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&recorder, t] {
      for (uint64_t i = 0; i < 500; ++i) {
        recorder.Record(TimelineEventType::kTaskBegin, /*at=*/i,
                        /*lane=*/static_cast<uint32_t>(t), /*arg=*/i);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<TimelineEvent> first = recorder.Fold();
  std::vector<TimelineEvent> second = recorder.Fold();
  ASSERT_EQ(first.size(), 2000u);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].at, second[i].at);
    EXPECT_EQ(first[i].lane, second[i].lane);
    EXPECT_EQ(first[i].seq, second[i].seq);
    EXPECT_EQ(first[i].ring_serial, second[i].ring_serial);
  }
  // The Chrome export of the same fold is byte-identical too.
  std::string dump_a = recorder.ToChromeTrace(first, "parallel").Dump(2);
  std::string dump_b = recorder.ToChromeTrace(second, "parallel").Dump(2);
  EXPECT_EQ(dump_a, dump_b);
  // The global order is total: sorted by (at, lane, ring, seq).
  for (size_t i = 1; i < first.size(); ++i) {
    EXPECT_LE(first[i - 1].at, first[i].at);
  }
}

TEST(TimelineRecorderTest, ChromeExportValidatesAndNamesLanes) {
  TimelineRecorder recorder(TimelineRecorder::Options{});
  recorder.SetLaneName(0, "unit-a");
  recorder.SetLaneName(1, "unit-b");
  recorder.Record(TimelineEventType::kTaskBegin, 100, 0, 1);
  recorder.Record(TimelineEventType::kPunctRound, 150, 0, 7);
  recorder.Record(TimelineEventType::kTaskEnd, 200, 0, 1);
  recorder.Record(TimelineEventType::kDequeueWaitBegin, 50, 1, 0);
  recorder.Record(TimelineEventType::kDequeueWaitEnd, 90, 1, 0);
  JsonValue doc = recorder.ToChromeTrace(recorder.Fold(), "sim");
  EXPECT_TRUE(ValidateChromeTrace(doc).ok());
  std::string dump = doc.Dump(2);
  EXPECT_NE(dump.find("unit-a"), std::string::npos);
  EXPECT_NE(dump.find("unit-b"), std::string::npos);
  EXPECT_NE(dump.find("punct_round"), std::string::npos);
}

TEST(TimelineRecorderTest, ExportSanitizesWrappedRings) {
  // A wrapped ring can lose a span's Begin (stray End) or retain a Begin
  // whose End fell outside the window (unclosed). The export must still
  // produce a validator-clean document.
  TimelineRecorder::Options options;
  options.ring_capacity = 5;
  TimelineRecorder recorder(options);
  for (uint64_t i = 0; i < 6; ++i) {
    recorder.Record(TimelineEventType::kTaskBegin, 10 * i, 0, 0);
    recorder.Record(TimelineEventType::kTaskEnd, 10 * i + 5, 0, 0);
  }
  recorder.Record(TimelineEventType::kTaskBegin, 100, 0, 0);  // Unclosed.
  JsonValue doc = recorder.ToChromeTrace(recorder.Fold(), "parallel");
  EXPECT_TRUE(ValidateChromeTrace(doc).ok()) << doc.Dump(2);
}

TEST(ValidateChromeTraceTest, RejectsBrokenDocuments) {
  EXPECT_FALSE(ValidateChromeTrace(JsonValue::Object()).ok());

  auto event = [](const char* ph, const char* name, double ts) {
    JsonValue e = JsonValue::Object();
    e.Set("ph", JsonValue::String(ph));
    e.Set("name", JsonValue::String(name));
    e.Set("ts", JsonValue::Number(ts));
    e.Set("pid", JsonValue::Number(1));
    e.Set("tid", JsonValue::Number(0));
    return e;
  };
  // Mismatched span names.
  JsonValue events = JsonValue::Array();
  events.Push(event("B", "task", 0));
  events.Push(event("E", "dequeue_wait", 10));
  JsonValue doc = JsonValue::Object();
  doc.Set("traceEvents", std::move(events));
  EXPECT_FALSE(ValidateChromeTrace(doc).ok());

  // Unclosed span.
  JsonValue events2 = JsonValue::Array();
  events2.Push(event("B", "task", 0));
  JsonValue doc2 = JsonValue::Object();
  doc2.Set("traceEvents", std::move(events2));
  EXPECT_FALSE(ValidateChromeTrace(doc2).ok());

  // Backwards time within a lane.
  JsonValue events3 = JsonValue::Array();
  events3.Push(event("B", "task", 100));
  events3.Push(event("E", "task", 50));
  JsonValue doc3 = JsonValue::Object();
  doc3.Set("traceEvents", std::move(events3));
  EXPECT_FALSE(ValidateChromeTrace(doc3).ok());

  // A well-formed document passes.
  JsonValue events4 = JsonValue::Array();
  events4.Push(event("B", "task", 0));
  events4.Push(event("E", "task", 10));
  JsonValue doc4 = JsonValue::Object();
  doc4.Set("traceEvents", std::move(events4));
  EXPECT_TRUE(ValidateChromeTrace(doc4).ok());
}

TEST(TimelineEngineTest, SimTimelineIsByteIdenticalAcrossRuns) {
  BicliqueOptions options = SmallEngine();
  options.telemetry.timeline = true;
  RunReport first = RunBicliqueWorkload(options, SmallWorkload(2000));
  RunReport second = RunBicliqueWorkload(options, SmallWorkload(2000));
  ASSERT_NE(first.timeline_trace(), nullptr);
  ASSERT_NE(second.timeline_trace(), nullptr);
  // Deterministic virtual time + single-ring fold: identical runs export
  // identical documents, byte for byte.
  EXPECT_EQ(first.timeline_trace()->Dump(2), second.timeline_trace()->Dump(2));
  EXPECT_TRUE(ValidateChromeTrace(*first.timeline_trace()).ok());
  // Virtual-time stamps: events carry sim timestamps, and the summary
  // accounts every recorded event.
  const JsonValue* recorded = first.timeline.Find("events_recorded");
  ASSERT_NE(recorded, nullptr);
  EXPECT_GT(recorded->AsNumber(), 0);
  const JsonValue* dropped = first.timeline.Find("events_dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->AsNumber(), 0);
}

TEST(TimelineEngineTest, DisabledTimelineRecordsNothing) {
  BicliqueOptions options = SmallEngine();
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(1000));
  EXPECT_EQ(report.timeline_trace(), nullptr);
  EXPECT_TRUE(report.timeline.is_null());
}

TEST(TimelineEngineTest, ParallelTraceHasCoherentWorkerLanes) {
  BicliqueOptions options = SmallEngine();
  options.backend = runtime::BackendKind::kParallel;
  options.telemetry.timeline = true;
  // Keep the wall-clock sampler live during the run: its thread reads unit
  // stats while workers record timeline events.
  options.telemetry.sample_period = 5 * kMillisecond;
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(4000));
  ASSERT_NE(report.timeline_trace(), nullptr);
  // One coherent lane per worker thread: begin/end properly nested, time
  // monotone per lane — the tier-1 nesting checker.
  EXPECT_TRUE(ValidateChromeTrace(*report.timeline_trace()).ok());
  const JsonValue* events = report.timeline_trace()->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_GT(events->size(), 0u);
  // Every unit lane (2 routers + 4 joiners) plus the timer pseudo-lane
  // carries a thread_name metadata record.
  size_t named_lanes = 0;
  for (const JsonValue& event : events->elements()) {
    const JsonValue* ph = event.Find("ph");
    if (ph != nullptr && ph->is_string() && ph->AsString() == "M") {
      ++named_lanes;
    }
  }
  EXPECT_GE(named_lanes, 6u);
  const JsonValue* recorded = report.timeline.Find("events_recorded");
  ASSERT_NE(recorded, nullptr);
  EXPECT_GT(recorded->AsNumber(), 0);
}

TEST(TimelineRecorderTest, ConcurrentRecordAndFlightSnapshot) {
  // Hammer: worker threads record continuously into a tiny (constantly
  // wrapping) ring while the driver takes flight snapshots mid-flight —
  // the crash-postmortem access pattern. Snapshots must never tear: every
  // event they return was fully written.
  TimelineRecorder::Options options;
  options.ring_capacity = 64;
  TimelineRecorder recorder(options);
  std::atomic<bool> stop{false};
  std::atomic<int> started{0};
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&recorder, &stop, &started, t] {
      uint64_t i = 0;
      do {
        // at == arg lets the reader detect torn slots.
        recorder.Record(TimelineEventType::kTaskBegin, i,
                        static_cast<uint32_t>(t), i);
        if (i == 0) started.fetch_add(1);
        ++i;
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  // Wait until every writer's ring exists: on a loaded machine the snapshot
  // rounds over an empty rings list would otherwise outrun thread startup.
  while (started.load() < 4) std::this_thread::yield();
  for (int round = 0; round < 200; ++round) {
    std::vector<TimelineEvent> snapshot = recorder.FlightSnapshot();
    for (const TimelineEvent& event : snapshot) {
      EXPECT_EQ(event.at, event.arg) << "torn slot in flight snapshot";
      EXPECT_LT(event.lane, 4u);
      EXPECT_EQ(event.type, TimelineEventType::kTaskBegin);
    }
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& thread : writers) thread.join();
  EXPECT_GT(recorder.events_recorded(), 0u);
  // Quiescent now: the fold sees exactly the retained window per ring.
  std::vector<TimelineEvent> events = recorder.Fold();
  EXPECT_LE(events.size(), 4u * 64u);
  recorder.AddFlightDump("hammer", recorder.FlightSnapshot());
  EXPECT_EQ(recorder.flight_dumps(), 1u);
  JsonValue doc = recorder.ToChromeTrace(events, "parallel");
  EXPECT_TRUE(ValidateChromeTrace(doc).ok());
  const JsonValue* bistream = doc.Find("bistream");
  ASSERT_NE(bistream, nullptr);
  const JsonValue* dumps = bistream->Find("flight_recorder");
  ASSERT_NE(dumps, nullptr);
  EXPECT_EQ(dumps->size(), 1u);
}

}  // namespace
}  // namespace bistream
