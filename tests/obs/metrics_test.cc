#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/time_series.h"
#include "sim/event_loop.h"

namespace bistream {
namespace {

TEST(MetricsRegistryTest, ScopedNameFormat) {
  EXPECT_EQ(MetricsRegistry::ScopedName("joiner", 3, "probes"),
            "joiner.3.probes");
  EXPECT_EQ(MetricsRegistry::ScopedName("router", 0, "busy_ns"),
            "router.0.busy_ns");
}

TEST(MetricsRegistryTest, CountersHaveStableAddresses) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("engine.results");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(registry.GetCounter("engine.results"), c);
  EXPECT_EQ(registry.ReadCounter("engine.results"), 42u);
  EXPECT_FALSE(registry.ReadCounter("engine.absent").has_value());
  EXPECT_EQ(registry.counter_count(), 1u);
}

TEST(MetricsRegistryTest, GaugeLifecycle) {
  MetricsRegistry registry;
  double state = 7;
  registry.RegisterGauge("joiner.0.state_bytes", [&state] { return state; });
  EXPECT_EQ(registry.ReadGauge("joiner.0.state_bytes"), 7.0);
  state = 11;
  EXPECT_EQ(registry.ReadGauge("joiner.0.state_bytes"), 11.0);

  // Re-registration replaces (unit recovery re-wires its gauges).
  registry.RegisterGauge("joiner.0.state_bytes", [] { return 99.0; });
  EXPECT_EQ(registry.ReadGauge("joiner.0.state_bytes"), 99.0);
  EXPECT_EQ(registry.gauge_count(), 1u);

  registry.UnregisterGauge("joiner.0.state_bytes");
  EXPECT_FALSE(registry.ReadGauge("joiner.0.state_bytes").has_value());
}

TEST(MetricsRegistryTest, UnregisterByPrefix) {
  MetricsRegistry registry;
  registry.RegisterGauge("joiner.1.busy_ns", [] { return 1.0; });
  registry.RegisterGauge("joiner.1.state_bytes", [] { return 2.0; });
  registry.RegisterGauge("joiner.10.busy_ns", [] { return 3.0; });
  registry.UnregisterGaugesWithPrefix("joiner.1.");
  EXPECT_FALSE(registry.ReadGauge("joiner.1.busy_ns").has_value());
  EXPECT_FALSE(registry.ReadGauge("joiner.1.state_bytes").has_value());
  // "joiner.10." does not match the "joiner.1." prefix.
  EXPECT_TRUE(registry.ReadGauge("joiner.10.busy_ns").has_value());
}

TEST(MetricsRegistryTest, SampleMergesCountersAndGaugesSorted) {
  MetricsRegistry registry;
  registry.GetCounter("b.count")->Increment(2);
  registry.RegisterGauge("a.gauge", [] { return 1.5; });
  registry.GetCounter("c.count")->Increment(3);
  std::vector<std::pair<std::string, double>> sample = registry.Sample();
  ASSERT_EQ(sample.size(), 3u);
  EXPECT_EQ(sample[0].first, "a.gauge");
  EXPECT_EQ(sample[1].first, "b.count");
  EXPECT_EQ(sample[2].first, "c.count");
  EXPECT_DOUBLE_EQ(sample[0].second, 1.5);
  EXPECT_DOUBLE_EQ(sample[1].second, 2.0);
}

TEST(MetricsRegistryTest, TimersSnapshot) {
  MetricsRegistry registry;
  Timer* t = registry.GetTimer("joiner.0.probe_ns");
  t->Record(100);
  t->Record(300);
  EXPECT_EQ(registry.GetTimer("joiner.0.probe_ns"), t);
  auto timers = registry.SampleTimers();
  ASSERT_EQ(timers.size(), 1u);
  EXPECT_EQ(timers[0].first, "joiner.0.probe_ns");
  EXPECT_EQ(timers[0].second.count, 2u);
  EXPECT_EQ(timers[0].second.min, 100u);
  EXPECT_EQ(timers[0].second.max, 300u);
  // Records from several threads land in per-thread shards that Merged()
  // folds together.
  EXPECT_EQ(t->count(), 2u);
}

TEST(TimeSeriesTest, BackfillsNewColumnsAndPadsMissing) {
  TimeSeries series;
  series.Append(10, {{"a", 1.0}});
  // "b" appears at the second sample: its column is backfilled with a zero
  // for the first timestamp.
  series.Append(20, {{"a", 2.0}, {"b", 5.0}});
  // "b" vanishes (unit retired): padded with its last value.
  series.Append(30, {{"a", 3.0}});

  EXPECT_EQ(series.size(), 3u);
  const std::vector<double>* a = series.Column("a");
  const std::vector<double>* b = series.Column("b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(*a, (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(*b, (std::vector<double>{0.0, 5.0, 5.0}));
  EXPECT_EQ(series.Column("absent"), nullptr);

  JsonValue json = series.ToJson();
  EXPECT_EQ(json.Find("timestamps_ns")->size(), 3u);
  EXPECT_EQ(json.Find("metrics")->Find("b")->size(), 3u);
}

TEST(TelemetrySamplerTest, SamplesAtPeriodUntilStopped) {
  EventLoop loop;
  MetricsRegistry registry;
  Counter* ticks = registry.GetCounter("engine.ticks");
  TelemetrySamplerOptions options;
  options.sample_period = 100;
  TelemetrySampler sampler(&loop, &registry, options);

  bool stopped = false;
  sampler.Start([&stopped] { return stopped; });
  // Stop the world at t = 450: samples at 100..400 plus the final one.
  loop.ScheduleAt(450, [&] {
    ticks->Increment(9);
    stopped = true;
  });
  loop.RunUntilIdle();

  const TimeSeries& series = sampler.series();
  ASSERT_EQ(series.size(), 5u);
  EXPECT_EQ(series.timestamps().back(), 500u);
  EXPECT_EQ(series.Column("engine.ticks")->back(), 9.0);
}

TEST(TelemetrySamplerTest, DerivesBusyFractionFromCumulativeGauge) {
  EventLoop loop;
  MetricsRegistry registry;
  // Cumulative busy_ns grows at 50%: busy = now / 2.
  registry.RegisterGauge("joiner.0.busy_ns",
                         [&loop] { return static_cast<double>(loop.now()) / 2; });
  TelemetrySamplerOptions options;
  options.sample_period = 1000;
  TelemetrySampler sampler(&loop, &registry, options);
  bool stopped = false;
  sampler.Start([&stopped] { return stopped; });
  loop.ScheduleAt(3500, [&stopped] { stopped = true; });
  loop.RunUntilIdle();

  const std::vector<double>* fraction =
      sampler.series().Column("joiner.0.busy_fraction");
  ASSERT_NE(fraction, nullptr);
  for (double f : *fraction) EXPECT_NEAR(f, 0.5, 1e-9);
}

TEST(TelemetrySamplerTest, PeriodZeroDisables) {
  EventLoop loop;
  MetricsRegistry registry;
  TelemetrySampler sampler(&loop, &registry, {});
  sampler.Start([] { return false; });
  EXPECT_FALSE(sampler.active());
  loop.RunUntilIdle();
  EXPECT_TRUE(sampler.series().empty());
  // Manual sampling still works with period 0.
  sampler.SampleNow();
  EXPECT_EQ(sampler.series().size(), 1u);
}

}  // namespace
}  // namespace bistream
