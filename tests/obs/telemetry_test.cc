// End-to-end tests of the telemetry subsystem riding a real simulated run:
// deterministic trace sampling, series cadence, zero-perturbation, and the
// latency-breakdown sum property the E4 artifact relies on.

#include <gtest/gtest.h>

#include "harness/runner.h"
#include "obs/trace.h"

namespace bistream {
namespace {

BicliqueOptions SmallEngine() {
  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 2;
  options.window = 1 * kEventSecond;
  options.archive_period = 250 * kEventMilli;
  return options;
}

SyntheticWorkloadOptions SmallWorkload(uint64_t total_tuples) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 200;
  workload.rate_r = RateSchedule::Constant(1000);
  workload.rate_s = RateSchedule::Constant(1000);
  workload.total_tuples = total_tuples;
  workload.seed = 977;
  return workload;
}

TEST(TupleTracerTest, SamplesEveryNthIngress) {
  TupleTracer tracer(/*trace_every=*/4);
  Tuple t;
  int traced = 0;
  for (uint64_t i = 0; i < 10; ++i) {
    t.relation = kRelationR;
    t.id = i;
    if (tracer.OnIngress(t, /*now=*/i) != nullptr) ++traced;
  }
  // 10 ingress tuples at 1-in-4: tuples 0, 4, 8.
  EXPECT_EQ(traced, 3);
  EXPECT_EQ(tracer.ingress_seen(), 10u);
  EXPECT_NE(tracer.Find(kRelationR, 0), nullptr);
  EXPECT_EQ(tracer.Find(kRelationR, 1), nullptr);
}

TEST(TupleTracerTest, HopTimestampsAreSetIfZero) {
  TupleTracer tracer(/*trace_every=*/1);
  Tuple t;
  t.relation = kRelationS;
  t.id = 7;
  TraceSpan* span = tracer.OnIngress(t, 100);
  ASSERT_NE(span, nullptr);
  tracer.OnJoinArrival(kRelationS, 7, 250);
  tracer.OnJoinArrival(kRelationS, 7, 999);  // Replay echo: must not rewrite.
  EXPECT_EQ(span->join_arrival, 250u);
  tracer.OnRelease(kRelationS, 7, 300);
  tracer.OnRelease(kRelationS, 7, 999);
  EXPECT_EQ(span->released, 300u);
  // Untraced relation/id pair: all recorders are no-ops.
  tracer.OnProbe(kRelationR, 7, 5, 2, 10, 400);
  EXPECT_EQ(span->results, 0u);
}

TEST(TupleTracerTest, DisabledTracerTracesNothing) {
  TupleTracer tracer(/*trace_every=*/0);
  EXPECT_FALSE(tracer.enabled());
  Tuple t;
  EXPECT_EQ(tracer.OnIngress(t, 1), nullptr);
  EXPECT_TRUE(tracer.spans().empty());
}

TEST(TelemetryIntegrationTest, SpanCountIsDeterministic) {
  constexpr uint64_t kTuples = 4000;
  constexpr uint64_t kEvery = 16;
  BicliqueOptions options = SmallEngine();
  options.telemetry.trace_every = kEvery;
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(kTuples));
  // 1-in-16 of a fixed-size injection: exactly ceil(4000/16) spans, run
  // after run (sampling is by ingress ordinal, not by randomness).
  EXPECT_EQ(report.trace_spans, (kTuples + kEvery - 1) / kEvery);

  RunReport again = RunBicliqueWorkload(options, SmallWorkload(kTuples));
  EXPECT_EQ(again.trace_spans, report.trace_spans);
  EXPECT_EQ(again.breakdown.spans, report.breakdown.spans);
  EXPECT_DOUBLE_EQ(again.breakdown.mean_total_ns,
                   report.breakdown.mean_total_ns);
}

TEST(TelemetryIntegrationTest, SeriesLengthMatchesMakespanOverPeriod) {
  BicliqueOptions options = SmallEngine();
  options.telemetry.sample_period = 50 * kMillisecond;
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(4000));
  ASSERT_GT(report.engine.makespan_ns, 0u);
  // One sample per period over the makespan, plus the final drain sample;
  // allow one tick of slack at each end.
  double expected = static_cast<double>(report.engine.makespan_ns) /
                    static_cast<double>(options.telemetry.sample_period);
  EXPECT_GE(report.series.size(), static_cast<size_t>(expected) - 1);
  EXPECT_LE(report.series.size(), static_cast<size_t>(expected) + 2);
  // Sampled counters must agree with the final aggregate at the last row.
  const std::vector<double>* results = report.series.Column("engine.results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(results->back(), static_cast<double>(report.results));
}

TEST(TelemetryIntegrationTest, TracingDoesNotPerturbTheRun) {
  BicliqueOptions plain = SmallEngine();
  RunReport untraced = RunBicliqueWorkload(plain, SmallWorkload(3000));

  BicliqueOptions traced_opts = SmallEngine();
  traced_opts.telemetry.trace_every = 1;  // Trace every single tuple.
  traced_opts.telemetry.sample_period = 10 * kMillisecond;
  RunReport traced = RunBicliqueWorkload(traced_opts, SmallWorkload(3000));

  // Telemetry charges zero virtual cost: results, makespan, message and
  // byte counts are bit-identical with tracing at full rate.
  EXPECT_EQ(traced.results, untraced.results);
  EXPECT_EQ(traced.engine.makespan_ns, untraced.engine.makespan_ns);
  EXPECT_EQ(traced.engine.messages, untraced.engine.messages);
  EXPECT_EQ(traced.engine.bytes, untraced.engine.bytes);
  EXPECT_EQ(traced.engine.probes, untraced.engine.probes);
  EXPECT_EQ(traced.trace_spans, 3000u);
}

TEST(TelemetryIntegrationTest, BreakdownComponentsSumToTotal) {
  BicliqueOptions options = SmallEngine();
  options.telemetry.trace_every = 4;
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(6000));
  const LatencyBreakdown& b = report.breakdown;
  ASSERT_GT(b.spans, 0u);
  ASSERT_GT(b.mean_total_ns, 0.0);
  // The E4 acceptance property: queueing + ordering + probe within 5% of
  // end-to-end (probe cost is the only overcount; see trace.h).
  double sum = b.mean_queue_ns + b.mean_order_ns + b.mean_probe_ns;
  EXPECT_NEAR(sum / b.mean_total_ns, 1.0, 0.05);
  // With the ordering protocol on, the ordering component is a real,
  // nonzero share (the buffer holds tuples up to a punctuation round).
  EXPECT_GT(b.mean_order_ns, 0.0);
}

TEST(TelemetryIntegrationTest, ReportToJsonCarriesTelemetry) {
  BicliqueOptions options = SmallEngine();
  options.telemetry.trace_every = 8;
  options.telemetry.sample_period = 50 * kMillisecond;
  RunReport report = RunBicliqueWorkload(options, SmallWorkload(2000));
  JsonValue json = report.ToJson();
  ASSERT_NE(json.Find("engine"), nullptr);
  ASSERT_NE(json.Find("latency"), nullptr);
  ASSERT_NE(json.Find("series"), nullptr);
  ASSERT_NE(json.Find("breakdown"), nullptr);
  EXPECT_GT(json.Find("series")->Find("timestamps_ns")->size(), 0u);
  EXPECT_DOUBLE_EQ(json.Find("trace_spans")->AsNumber(),
                   static_cast<double>(report.trace_spans));
  EXPECT_DOUBLE_EQ(json.Find("sample_period_ns")->AsNumber(),
                   static_cast<double>(options.telemetry.sample_period));
}

}  // namespace
}  // namespace bistream
