#include "tuple/schema.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(SchemaTest, MakeAndLookup) {
  auto schema = Schema::Make({{"id", ValueType::kInt64},
                              {"price", ValueType::kDouble},
                              {"note", ValueType::kString}});
  ASSERT_TRUE(schema.ok());
  const Schema& s = **schema;
  EXPECT_EQ(s.num_fields(), 3u);
  EXPECT_EQ(s.field(1).name, "price");
  auto idx = s.FieldIndex("note");
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(*idx, 2u);
  EXPECT_TRUE(s.FieldIndex("nope").status().IsNotFound());
}

TEST(SchemaTest, RejectsDuplicates) {
  auto schema =
      Schema::Make({{"a", ValueType::kInt64}, {"a", ValueType::kDouble}});
  EXPECT_TRUE(schema.status().IsInvalidArgument());
}

TEST(SchemaTest, RejectsEmptyName) {
  auto schema = Schema::Make({{"", ValueType::kInt64}});
  EXPECT_TRUE(schema.status().IsInvalidArgument());
}

TEST(SchemaTest, ToStringLists) {
  auto schema = Schema::Make({{"k", ValueType::kInt64}}).ValueOrDie();
  EXPECT_EQ(schema->ToString(), "<k:int64>");
}

TEST(RowTest, ValuesByIndexAndName) {
  auto schema = Schema::Make({{"k", ValueType::kInt64},
                              {"v", ValueType::kString}})
                    .ValueOrDie();
  Row row(schema, {int64_t{9}, std::string("payload")});
  EXPECT_EQ(row.num_values(), 2u);
  EXPECT_EQ(row.value(0).AsInt64(), 9);
  auto v = row.ValueOf("v");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "payload");
  EXPECT_TRUE(row.ValueOf("missing").status().IsNotFound());
}

TEST(RowTest, ByteSizeSumsValues) {
  auto schema = Schema::Make({{"k", ValueType::kInt64},
                              {"s", ValueType::kString}})
                    .ValueOrDie();
  Row row(schema, {int64_t{1}, std::string("abc")});
  EXPECT_EQ(row.ByteSize(), 8u + 4u + 3u);
}

TEST(RowDeathTest, ArityMismatchAborts) {
  auto schema = Schema::Make({{"k", ValueType::kInt64}}).ValueOrDie();
  EXPECT_DEATH(Row(schema, {}), "arity");
}

}  // namespace
}  // namespace bistream
