#include "tuple/join_predicate.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

Tuple R(int64_t key) {
  Tuple t;
  t.relation = kRelationR;
  t.key = key;
  return t;
}

Tuple S(int64_t key) {
  Tuple t;
  t.relation = kRelationS;
  t.key = key;
  return t;
}

TEST(JoinPredicateTest, EquiMatches) {
  JoinPredicate p = JoinPredicate::Equi();
  EXPECT_TRUE(p.Matches(R(5), S(5)));
  EXPECT_FALSE(p.Matches(R(5), S(6)));
  // Argument order must not matter.
  EXPECT_TRUE(p.Matches(S(5), R(5)));
}

TEST(JoinPredicateTest, BandMatchesWithinWidth) {
  JoinPredicate p = JoinPredicate::Band(3);
  EXPECT_TRUE(p.Matches(R(10), S(13)));
  EXPECT_TRUE(p.Matches(R(10), S(7)));
  EXPECT_TRUE(p.Matches(R(10), S(10)));
  EXPECT_FALSE(p.Matches(R(10), S(14)));
  EXPECT_FALSE(p.Matches(R(10), S(6)));
}

TEST(JoinPredicateTest, BandZeroWidthIsEquality) {
  JoinPredicate p = JoinPredicate::Band(0);
  EXPECT_TRUE(p.Matches(R(4), S(4)));
  EXPECT_FALSE(p.Matches(R(4), S(5)));
}

TEST(JoinPredicateTest, BandSurvivesInt64Extremes) {
  JoinPredicate p = JoinPredicate::Band(10);
  EXPECT_FALSE(p.Matches(R(INT64_MAX), S(INT64_MIN)));
  EXPECT_TRUE(p.Matches(R(INT64_MAX), S(INT64_MAX - 5)));
  EXPECT_TRUE(p.Matches(R(INT64_MIN), S(INT64_MIN + 10)));
}

TEST(JoinPredicateTest, LessThanUsesRelationOrder) {
  JoinPredicate p = JoinPredicate::LessThan();
  EXPECT_TRUE(p.Matches(R(1), S(2)));   // r.key < s.key.
  EXPECT_FALSE(p.Matches(R(2), S(1)));
  EXPECT_FALSE(p.Matches(R(2), S(2)));
  // Same pair, reversed argument order: identical verdict.
  EXPECT_TRUE(p.Matches(S(2), R(1)));
}

TEST(JoinPredicateTest, ThetaUsesCustomFunction) {
  JoinPredicate p = JoinPredicate::Theta(
      "sum-even", [](const Tuple& l, const Tuple& r) {
        return (l.key + r.key) % 2 == 0;
      });
  EXPECT_TRUE(p.Matches(R(2), S(4)));
  EXPECT_TRUE(p.Matches(R(3), S(5)));
  EXPECT_FALSE(p.Matches(R(2), S(5)));
  EXPECT_EQ(p.name(), "sum-even");
}

TEST(JoinPredicateTest, ProbeRangeEqui) {
  JoinPredicate p = JoinPredicate::Equi();
  KeyRange range = p.ProbeRange(R(7), kRelationS);
  EXPECT_EQ(range.lo, 7);
  EXPECT_EQ(range.hi, 7);
}

TEST(JoinPredicateTest, ProbeRangeBand) {
  JoinPredicate p = JoinPredicate::Band(5);
  KeyRange range = p.ProbeRange(S(100), kRelationR);
  EXPECT_EQ(range.lo, 95);
  EXPECT_EQ(range.hi, 105);
}

TEST(JoinPredicateTest, ProbeRangeBandSaturates) {
  JoinPredicate p = JoinPredicate::Band(10);
  KeyRange hi = p.ProbeRange(R(INT64_MAX - 2), kRelationS);
  EXPECT_EQ(hi.hi, INT64_MAX);
  KeyRange lo = p.ProbeRange(R(INT64_MIN + 2), kRelationS);
  EXPECT_EQ(lo.lo, INT64_MIN);
}

TEST(JoinPredicateTest, ProbeRangeLessThanDependsOnDirection) {
  JoinPredicate p = JoinPredicate::LessThan();
  // R tuple probing stored S: stored keys must be greater.
  KeyRange rs = p.ProbeRange(R(10), kRelationS);
  EXPECT_EQ(rs.lo, 11);
  EXPECT_EQ(rs.hi, INT64_MAX);
  // S tuple probing stored R: stored keys must be smaller.
  KeyRange sr = p.ProbeRange(S(10), kRelationR);
  EXPECT_EQ(sr.lo, INT64_MIN);
  EXPECT_EQ(sr.hi, 9);
}

TEST(JoinPredicateTest, ProbeRangeLessThanEmptyAtExtremes) {
  JoinPredicate p = JoinPredicate::LessThan();
  KeyRange empty = p.ProbeRange(R(INT64_MAX), kRelationS);
  EXPECT_GT(empty.lo, empty.hi);
  KeyRange empty2 = p.ProbeRange(S(INT64_MIN), kRelationR);
  EXPECT_GT(empty2.lo, empty2.hi);
}

TEST(JoinPredicateTest, RecommendedIndexAndRouting) {
  EXPECT_EQ(JoinPredicate::Equi().RecommendedIndex(), IndexKind::kHash);
  EXPECT_EQ(JoinPredicate::Band(1).RecommendedIndex(), IndexKind::kOrdered);
  EXPECT_EQ(JoinPredicate::LessThan().RecommendedIndex(),
            IndexKind::kOrdered);
  auto theta = JoinPredicate::Theta("t", [](const Tuple&, const Tuple&) {
    return true;
  });
  EXPECT_EQ(theta.RecommendedIndex(), IndexKind::kScan);

  EXPECT_EQ(JoinPredicate::Equi().RecommendedRouting(),
            RoutingKind::kContHash);
  EXPECT_EQ(JoinPredicate::Band(1).RecommendedRouting(),
            RoutingKind::kContRand);
  EXPECT_EQ(theta.RecommendedRouting(), RoutingKind::kContRand);
}

TEST(TupleTest, SerializedSizeCountsRow) {
  Tuple bare = R(1);
  size_t base = bare.SerializedSize();
  EXPECT_EQ(base, 40u);
  auto schema = Schema::Make({{"s", ValueType::kString}}).ValueOrDie();
  Tuple with_row = R(1);
  with_row.row =
      std::make_shared<const Row>(schema, std::vector<Value>{"abcdef"});
  EXPECT_EQ(with_row.SerializedSize(), base + 4 + 6);
}

TEST(JoinResultTest, PairKeyDistinguishesPairs) {
  JoinResult a{.r_id = 1, .s_id = 2};
  JoinResult b{.r_id = 2, .s_id = 1};
  JoinResult c{.r_id = 1, .s_id = 2};
  EXPECT_EQ(a.PairKey(), c.PairKey());
  EXPECT_NE(a.PairKey(), b.PairKey());
}

}  // namespace
}  // namespace bistream
