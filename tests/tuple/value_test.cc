#include "tuple/value.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  Value null;
  Value i(int64_t{7});
  Value d(3.5);
  Value s(std::string("hi"));
  Value cs("bye");

  EXPECT_TRUE(null.is_null());
  EXPECT_EQ(i.type(), ValueType::kInt64);
  EXPECT_EQ(d.type(), ValueType::kDouble);
  EXPECT_EQ(s.type(), ValueType::kString);
  EXPECT_EQ(cs.type(), ValueType::kString);

  EXPECT_EQ(i.AsInt64(), 7);
  EXPECT_DOUBLE_EQ(d.AsDouble(), 3.5);
  EXPECT_EQ(s.AsString(), "hi");
  EXPECT_EQ(cs.AsString(), "bye");
}

TEST(ValueTest, AsNumericWidensInt) {
  EXPECT_DOUBLE_EQ(Value(int64_t{4}).AsNumeric(), 4.0);
  EXPECT_DOUBLE_EQ(Value(2.25).AsNumeric(), 2.25);
}

TEST(ValueDeathTest, WrongAccessorAborts) {
  Value s("text");
  EXPECT_DEATH(s.AsInt64(), "not int64");
  EXPECT_DEATH(Value(int64_t{1}).AsString(), "not string");
  EXPECT_DEATH(Value("x").AsNumeric(), "not numeric");
}

TEST(ValueTest, EqualityAndOrdering) {
  EXPECT_EQ(Value(int64_t{5}), Value(int64_t{5}));
  EXPECT_FALSE(Value(int64_t{5}) == Value(int64_t{6}));
  EXPECT_TRUE(Value(int64_t{1}) < Value(int64_t{2}));
  EXPECT_EQ(Value("a"), Value("a"));
  EXPECT_TRUE(Value("a") < Value("b"));
}

TEST(ValueTest, HashConsistentWithEquality) {
  EXPECT_EQ(Value(int64_t{10}).Hash(), Value(int64_t{10}).Hash());
  EXPECT_EQ(Value("k").Hash(), Value("k").Hash());
  EXPECT_NE(Value("k").Hash(), Value("l").Hash());
  // -0.0 and 0.0 compare equal as doubles, so they must hash equal.
  EXPECT_EQ(Value(0.0).Hash(), Value(-0.0).Hash());
}

TEST(ValueTest, ByteSizes) {
  EXPECT_EQ(Value().ByteSize(), 1u);
  EXPECT_EQ(Value(int64_t{1}).ByteSize(), 8u);
  EXPECT_EQ(Value(1.0).ByteSize(), 8u);
  EXPECT_EQ(Value("abcd").ByteSize(), 8u);  // 4 framing + 4 chars.
}

TEST(ValueTest, ToStringRenders) {
  EXPECT_EQ(Value().ToString(), "null");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("x").ToString(), "\"x\"");
}

}  // namespace
}  // namespace bistream
