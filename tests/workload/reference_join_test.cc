// The oracle itself must be right: compare against hand-computed joins and
// verify the checker's discrepancy classification.

#include "workload/reference_join.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TimedTuple Make(RelationId rel, uint64_t id, int64_t key, EventTime ts) {
  TimedTuple tt;
  tt.arrival = static_cast<SimTime>(ts) * kMicrosecond;
  tt.tuple.relation = rel;
  tt.tuple.id = id;
  tt.tuple.key = key;
  tt.tuple.ts = ts;
  return tt;
}

TEST(PackPairTest, RoundTrips) {
  uint64_t packed = PackPair(7, 9);
  EXPECT_EQ(packed >> 32, 7u);
  EXPECT_EQ(packed & 0xFFFFFFFF, 9u);
  EXPECT_NE(PackPair(1, 2), PackPair(2, 1));
}

TEST(ReferenceJoinTest, EquiJoinHandComputed) {
  std::vector<TimedTuple> stream = {
      Make(kRelationR, 1, 10, 0),  Make(kRelationS, 2, 10, 5),
      Make(kRelationR, 3, 20, 10), Make(kRelationS, 4, 20, 12),
      Make(kRelationS, 5, 10, 14), Make(kRelationR, 6, 99, 16),
  };
  auto expected = ComputeExpectedPairs(stream, JoinPredicate::Equi(),
                                       /*window=*/100);
  // Pairs: (1,2), (1,5), (3,4). Tuple 6 matches nothing.
  EXPECT_EQ(expected.size(), 3u);
  EXPECT_EQ(expected.count(PackPair(1, 2)), 1u);
  EXPECT_EQ(expected.count(PackPair(1, 5)), 1u);
  EXPECT_EQ(expected.count(PackPair(3, 4)), 1u);
}

TEST(ReferenceJoinTest, WindowExcludesDistantPairs) {
  std::vector<TimedTuple> stream = {
      Make(kRelationR, 1, 10, 0),
      Make(kRelationS, 2, 10, 50),   // Within W=50 (inclusive).
      Make(kRelationS, 3, 10, 51),   // Outside.
  };
  auto expected =
      ComputeExpectedPairs(stream, JoinPredicate::Equi(), /*window=*/50);
  EXPECT_EQ(expected.size(), 1u);
  EXPECT_EQ(expected.count(PackPair(1, 2)), 1u);
}

TEST(ReferenceJoinTest, BandJoinHandComputed) {
  std::vector<TimedTuple> stream = {
      Make(kRelationR, 1, 10, 0),
      Make(kRelationS, 2, 12, 1),  // |10-12| <= 2.
      Make(kRelationS, 3, 13, 2),  // Outside band.
      Make(kRelationS, 4, 8, 3),   // |10-8| <= 2.
  };
  auto expected =
      ComputeExpectedPairs(stream, JoinPredicate::Band(2), /*window=*/100);
  EXPECT_EQ(expected.size(), 2u);
  EXPECT_EQ(expected.count(PackPair(1, 2)), 1u);
  EXPECT_EQ(expected.count(PackPair(1, 4)), 1u);
}

TEST(ReferenceJoinTest, LessThanHandComputed) {
  std::vector<TimedTuple> stream = {
      Make(kRelationR, 1, 5, 0),
      Make(kRelationS, 2, 6, 1),
      Make(kRelationS, 3, 5, 2),
      Make(kRelationS, 4, 4, 3),
  };
  auto expected = ComputeExpectedPairs(stream, JoinPredicate::LessThan(),
                                       /*window=*/100);
  EXPECT_EQ(expected.size(), 1u);  // Only r.key=5 < s.key=6.
  EXPECT_EQ(expected.count(PackPair(1, 2)), 1u);
}

TEST(ReferenceJoinTest, ThetaAgreesWithEquiOnSameInput) {
  SyntheticWorkloadOptions options;
  options.key_domain = 20;
  options.total_tuples = 800;
  options.seed = 5;
  SyntheticSource source(options);
  std::vector<TimedTuple> stream = DrainSource(&source);

  auto equi =
      ComputeExpectedPairs(stream, JoinPredicate::Equi(), 500 * kEventMilli);
  auto theta = ComputeExpectedPairs(
      stream,
      JoinPredicate::Theta("manual-equi",
                           [](const Tuple& l, const Tuple& r) {
                             return l.key == r.key;
                           }),
      500 * kEventMilli);
  EXPECT_EQ(equi, theta);
}

TEST(ResultCheckerTest, CleanWhenExact) {
  std::vector<TimedTuple> stream = {
      Make(kRelationR, 1, 10, 0),
      Make(kRelationS, 2, 10, 5),
  };
  ResultChecker checker;
  checker.OnResult(1, 2);
  CheckReport report = checker.Check(stream, JoinPredicate::Equi(), 100);
  EXPECT_TRUE(report.Clean());
  EXPECT_EQ(report.expected, 1u);
  EXPECT_EQ(report.produced, 1u);
}

TEST(ResultCheckerTest, ClassifiesMissingDuplicateSpurious) {
  std::vector<TimedTuple> stream = {
      Make(kRelationR, 1, 10, 0), Make(kRelationS, 2, 10, 5),
      Make(kRelationR, 3, 20, 6), Make(kRelationS, 4, 20, 7),
  };
  ResultChecker checker;
  checker.OnResult(1, 2);
  checker.OnResult(1, 2);   // Duplicate.
  checker.OnResult(1, 4);   // Spurious (keys differ).
  // (3, 4) missing.
  CheckReport report = checker.Check(stream, JoinPredicate::Equi(), 100);
  EXPECT_FALSE(report.Clean());
  EXPECT_EQ(report.missing, 1u);
  EXPECT_EQ(report.duplicates, 1u);
  EXPECT_EQ(report.spurious, 1u);
  EXPECT_EQ(report.expected, 2u);
  EXPECT_EQ(report.produced, 3u);
}

TEST(ResultCheckerTest, ResetClears) {
  ResultChecker checker;
  checker.OnResult(1, 2);
  checker.Reset();
  EXPECT_EQ(checker.total_results(), 0u);
}

}  // namespace
}  // namespace bistream
