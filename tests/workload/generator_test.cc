// SyntheticSource, RateSchedule, and TpchSource behaviours.

#include "workload/generator.h"

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "workload/tpch_stream.h"

namespace bistream {
namespace {

TEST(RateScheduleTest, ConstantRate) {
  RateSchedule rate = RateSchedule::Constant(1000);
  EXPECT_DOUBLE_EQ(rate.RateAt(0), 1000);
  EXPECT_DOUBLE_EQ(rate.RateAt(99 * kSecond), 1000);
  EXPECT_EQ(rate.GapAt(0), kSecond / 1000);
}

TEST(RateScheduleTest, SteppedRate) {
  auto rate = RateSchedule::Make({{0, 300},
                                  {10 * kSecond, 400},
                                  {40 * kSecond, 200}});
  ASSERT_TRUE(rate.ok());
  EXPECT_DOUBLE_EQ(rate->RateAt(5 * kSecond), 300);
  EXPECT_DOUBLE_EQ(rate->RateAt(10 * kSecond), 400);
  EXPECT_DOUBLE_EQ(rate->RateAt(39 * kSecond), 400);
  EXPECT_DOUBLE_EQ(rate->RateAt(41 * kSecond), 200);
}

TEST(RateScheduleTest, RejectsBadSchedules) {
  EXPECT_FALSE(RateSchedule::Make({}).ok());
  EXPECT_FALSE(RateSchedule::Make({{5, 100}}).ok());            // Not at 0.
  EXPECT_FALSE(RateSchedule::Make({{0, 100}, {0, 200}}).ok());  // Not increasing.
  EXPECT_FALSE(RateSchedule::Make({{0, -5}}).ok());             // Negative.
}

SyntheticWorkloadOptions BaseOptions() {
  SyntheticWorkloadOptions options;
  options.key_domain = 100;
  options.rate_r = RateSchedule::Constant(1000);
  options.rate_s = RateSchedule::Constant(1000);
  options.total_tuples = 5000;
  options.seed = 9;
  return options;
}

TEST(SyntheticSourceTest, ArrivalsAreMonotoneAndIdsUnique) {
  SyntheticSource source(BaseOptions());
  SimTime prev = 0;
  std::set<uint64_t> ids;
  uint64_t count = 0;
  while (auto tt = source.Next()) {
    EXPECT_GE(tt->arrival, prev);
    prev = tt->arrival;
    EXPECT_TRUE(ids.insert(tt->tuple.id).second) << "duplicate id";
    EXPECT_LT(tt->tuple.key, 100);
    EXPECT_GE(tt->tuple.key, 0);
    // Event time mirrors arrival time.
    EXPECT_EQ(tt->tuple.ts,
              static_cast<EventTime>(tt->arrival / kMicrosecond));
    ++count;
  }
  EXPECT_EQ(count, 5000u);
}

TEST(SyntheticSourceTest, Deterministic) {
  SyntheticSource a(BaseOptions());
  SyntheticSource b(BaseOptions());
  for (int i = 0; i < 1000; ++i) {
    auto ta = a.Next();
    auto tb = b.Next();
    ASSERT_TRUE(ta && tb);
    EXPECT_EQ(ta->arrival, tb->arrival);
    EXPECT_EQ(ta->tuple.key, tb->tuple.key);
    EXPECT_EQ(ta->tuple.relation, tb->tuple.relation);
  }
}

TEST(SyntheticSourceTest, RatesBalanceRelations) {
  SyntheticWorkloadOptions options = BaseOptions();
  options.total_tuples = 20000;
  SyntheticSource source(options);
  uint64_t r = 0, s = 0;
  while (auto tt = source.Next()) {
    (tt->tuple.relation == kRelationR ? r : s)++;
  }
  EXPECT_NEAR(static_cast<double>(r) / (r + s), 0.5, 0.03);
}

TEST(SyntheticSourceTest, AsymmetricRates) {
  SyntheticWorkloadOptions options = BaseOptions();
  options.rate_r = RateSchedule::Constant(3000);
  options.rate_s = RateSchedule::Constant(1000);
  options.total_tuples = 20000;
  SyntheticSource source(options);
  uint64_t r = 0, s = 0;
  while (auto tt = source.Next()) {
    (tt->tuple.relation == kRelationR ? r : s)++;
  }
  EXPECT_NEAR(static_cast<double>(r) / (r + s), 0.75, 0.03);
}

TEST(SyntheticSourceTest, ObservedRateMatchesSchedule) {
  SyntheticWorkloadOptions options = BaseOptions();
  options.total_tuples = 10000;  // 2000/s combined → ~5 s of stream.
  SyntheticSource source(options);
  std::vector<TimedTuple> stream = DrainSource(&source);
  double span = SimTimeToSeconds(stream.back().arrival);
  EXPECT_NEAR(static_cast<double>(stream.size()) / span, 2000, 150);
}

TEST(SyntheticSourceTest, DeterministicGapsWhenNotPoisson) {
  SyntheticWorkloadOptions options = BaseOptions();
  options.poisson = false;
  options.total_tuples = 100;
  SyntheticSource source(options);
  std::vector<TimedTuple> stream = DrainSource(&source);
  // Per-relation gaps are exactly 1 ms.
  std::vector<SimTime> r_arrivals;
  for (const auto& tt : stream) {
    if (tt.tuple.relation == kRelationR) r_arrivals.push_back(tt.arrival);
  }
  for (size_t i = 1; i < r_arrivals.size(); ++i) {
    EXPECT_EQ(r_arrivals[i] - r_arrivals[i - 1], kSecond / 1000);
  }
}

TEST(SyntheticSourceTest, ZipfSkewShowsInKeys) {
  SyntheticWorkloadOptions options = BaseOptions();
  options.zipf_theta_r = 1.2;
  options.total_tuples = 20000;
  SyntheticSource source(options);
  uint64_t hot = 0, total_r = 0;
  while (auto tt = source.Next()) {
    if (tt->tuple.relation != kRelationR) continue;
    ++total_r;
    if (tt->tuple.key == 0) ++hot;
  }
  EXPECT_GT(static_cast<double>(hot) / total_r, 0.2);
}

TEST(TpchSourceTest, OrdersPrecedeTheirLineItems) {
  TpchStreamOptions options;
  options.total_orders = 200;
  options.seed = 3;
  TpchSource source(options);
  std::map<int64_t, SimTime> order_arrival;
  SimTime prev = 0;
  uint64_t orders = 0, items = 0;
  while (auto tt = source.Next()) {
    EXPECT_GE(tt->arrival, prev);
    prev = tt->arrival;
    if (tt->tuple.relation == kRelationR) {
      order_arrival[tt->tuple.key] = tt->arrival;
      ++orders;
      ASSERT_NE(tt->tuple.row, nullptr);
      EXPECT_EQ(tt->tuple.row->ValueOf("o_orderkey")->AsInt64(),
                tt->tuple.key);
    } else {
      ++items;
      auto it = order_arrival.find(tt->tuple.key);
      ASSERT_NE(it, order_arrival.end())
          << "line item before its order";
      EXPECT_GE(tt->arrival, it->second);
      EXPECT_LE(tt->arrival, it->second + options.max_lineitem_delay);
    }
  }
  EXPECT_EQ(orders, 200u);
  EXPECT_GE(items, orders * 1u);
  EXPECT_LE(items, orders * 7u);
}

}  // namespace
}  // namespace bistream
