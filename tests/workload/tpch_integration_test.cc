// Full-stack integration on the TPC-H-flavoured workload: Orders ⋈
// LineItem through both engines, verified against the oracle, including
// the Row/Schema payload path.

#include <gtest/gtest.h>

#include "harness/runner.h"
#include "workload/tpch_stream.h"

namespace bistream {
namespace {

std::vector<TimedTuple> MakeTpchStream(uint64_t seed, uint64_t orders) {
  TpchStreamOptions options;
  options.orders_per_sec = 500;
  options.total_orders = orders;
  options.seed = seed;
  TpchSource source(options);
  return DrainSource(&source);
}

struct VecSource final : StreamSource {
  explicit VecSource(const std::vector<TimedTuple>* v) : v_(v) {}
  std::optional<TimedTuple> Next() override {
    if (pos_ >= v_->size()) return std::nullopt;
    return (*v_)[pos_++];
  }
  const std::vector<TimedTuple>* v_;
  size_t pos_ = 0;
};

TEST(TpchIntegrationTest, BicliqueJoinsOrdersWithLineItems) {
  std::vector<TimedTuple> stream = MakeTpchStream(1, 800);

  BicliqueOptions options;
  options.num_routers = 2;
  options.joiners_r = 2;
  options.joiners_s = 3;
  options.subgroups_r = 2;
  options.subgroups_s = 3;
  options.window = 5 * kEventSecond;
  options.archive_period = 500 * kEventMilli;

  EventLoop loop;
  CollectorSink sink(/*check=*/true);
  BicliqueEngine engine(&loop, options, &sink);
  VecSource replay(&stream);
  engine.RunToCompletion(&replay);

  CheckReport check =
      sink.checker().Check(stream, options.predicate, options.window);
  EXPECT_TRUE(check.Clean()) << check.ToString();
  // Every line item trails its order by <= 2 s < W, so each must join with
  // its order: results >= number of line items.
  uint64_t lineitems = 0;
  for (const TimedTuple& tt : stream) {
    lineitems += tt.tuple.relation == kRelationS ? 1 : 0;
  }
  EXPECT_GE(sink.count(), lineitems);
}

TEST(TpchIntegrationTest, RowPayloadsSurviveTheEngine) {
  std::vector<TimedTuple> stream = MakeTpchStream(2, 200);

  // Results carry ids; verify the stream's rows are well-formed and the
  // payload bytes were accounted in the wire size (bigger than bare).
  for (const TimedTuple& tt : stream) {
    ASSERT_NE(tt.tuple.row, nullptr);
    EXPECT_GT(tt.tuple.SerializedSize(), 40u);
    if (tt.tuple.relation == kRelationR) {
      EXPECT_EQ(tt.tuple.row->ValueOf("o_orderkey")->AsInt64(),
                tt.tuple.key);
    } else {
      EXPECT_EQ(tt.tuple.row->ValueOf("l_orderkey")->AsInt64(),
                tt.tuple.key);
    }
  }
}

TEST(TpchIntegrationTest, MatrixAgreesWithBiclique) {
  std::vector<TimedTuple> stream = MakeTpchStream(3, 600);

  BicliqueOptions biclique;
  biclique.window = 5 * kEventSecond;
  EventLoop loop1;
  CollectorSink sink1;
  BicliqueEngine engine1(&loop1, biclique, &sink1);
  VecSource replay1(&stream);
  engine1.RunToCompletion(&replay1);

  MatrixOptions matrix;
  matrix.rows = 2;
  matrix.cols = 2;
  matrix.window = 5 * kEventSecond;
  EventLoop loop2;
  CollectorSink sink2;
  MatrixEngine engine2(&loop2, matrix, &sink2);
  VecSource replay2(&stream);
  engine2.RunToCompletion(&replay2);

  EXPECT_EQ(sink1.count(), sink2.count());
}

}  // namespace
}  // namespace bistream
