#include "workload/zipf.h"

#include <gtest/gtest.h>

#include <map>

namespace bistream {
namespace {

TEST(ZipfTest, ThetaZeroIsUniform) {
  ZipfDistribution zipf(10, 0.0);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  constexpr int kSamples = 100000;
  for (int i = 0; i < kSamples; ++i) ++counts[zipf.Sample(&rng)];
  for (const auto& [k, c] : counts) {
    EXPECT_LT(k, 10u);
    EXPECT_NEAR(c, kSamples / 10, kSamples / 10 * 0.1);
  }
}

TEST(ZipfTest, SkewConcentratesOnLowRanks) {
  ZipfDistribution zipf(1000, 1.0);
  Rng rng(2);
  int hot = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(&rng) < 10) ++hot;
  }
  // Under Zipf(1.0, n=1000) the top-10 ranks carry ~39% of the mass.
  EXPECT_GT(hot, kSamples / 3);
}

TEST(ZipfTest, HottestMassMatchesEmpiricalFrequency) {
  ZipfDistribution zipf(100, 0.8);
  Rng rng(3);
  int zero = 0;
  constexpr int kSamples = 200000;
  for (int i = 0; i < kSamples; ++i) {
    if (zipf.Sample(&rng) == 0) ++zero;
  }
  EXPECT_NEAR(static_cast<double>(zero) / kSamples, zipf.HottestMass(),
              0.01);
}

TEST(ZipfTest, HigherThetaMoreSkew) {
  EXPECT_LT(ZipfDistribution(100, 0.5).HottestMass(),
            ZipfDistribution(100, 1.0).HottestMass());
  EXPECT_LT(ZipfDistribution(100, 1.0).HottestMass(),
            ZipfDistribution(100, 1.5).HottestMass());
}

TEST(ZipfTest, SamplesAlwaysInDomain) {
  ZipfDistribution zipf(7, 1.2);
  Rng rng(4);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(zipf.Sample(&rng), 7u);
}

TEST(ZipfTest, SingletonDomain) {
  ZipfDistribution zipf(1, 1.0);
  Rng rng(5);
  EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.HottestMass(), 1.0);
}

}  // namespace
}  // namespace bistream
