// Validates a BENCH_*.json telemetry artifact against the checked-in shape
// contract (tests/bench_schema.json). Used by the tier-1 bench smoke tests:
// every bench/e* binary must emit an artifact that passes this checker.
//
// Usage: bench_schema_check <schema.json> <artifact.json>

#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/json.h"

namespace bistream {
namespace {

int g_errors = 0;

void Fail(const std::string& message) {
  std::fprintf(stderr, "SCHEMA VIOLATION: %s\n", message.c_str());
  ++g_errors;
}

std::vector<std::string> RequiredKeys(const JsonValue& schema,
                                      const std::string& field) {
  std::vector<std::string> keys;
  const JsonValue* list = schema.Find(field);
  if (list == nullptr || !list->is_array()) {
    Fail("schema itself is missing list '" + field + "'");
    return keys;
  }
  for (const JsonValue& key : list->elements()) keys.push_back(key.AsString());
  return keys;
}

/// Checks `object` has every key in `required`; `where` labels the message.
void CheckRequired(const JsonValue* object,
                   const std::vector<std::string>& required,
                   const std::string& where) {
  if (object == nullptr || !object->is_object()) {
    Fail(where + " is missing or not an object");
    return;
  }
  for (const std::string& key : required) {
    if (object->Find(key) == nullptr) {
      Fail(where + " lacks required key '" + key + "'");
    }
  }
}

/// Every metric column must have exactly one value per sampled timestamp.
void CheckSeries(const JsonValue* series, const std::string& where) {
  if (series == nullptr) return;  // Absence already reported.
  const JsonValue* timestamps = series->Find("timestamps_ns");
  const JsonValue* metrics = series->Find("metrics");
  if (timestamps == nullptr || !timestamps->is_array() || metrics == nullptr ||
      !metrics->is_object()) {
    return;  // Key absence already reported by CheckRequired.
  }
  for (const auto& [name, column] : metrics->members()) {
    if (!column.is_array() || column.size() != timestamps->size()) {
      Fail(where + " metric '" + name + "' has " + std::to_string(column.size()) +
           " values for " + std::to_string(timestamps->size()) + " timestamps");
    }
  }
}

/// When spans were traced, queueing + ordering must account for end-to-end
/// latency to within 5% — results emit at the ordering-buffer release
/// instant, so this holds structurally (see trace.h). The probe component
/// is charged virtual work reported alongside; it is a deliberate overcount
/// and can be large when a bench inflates probe cost (E8), so it is only
/// required to be non-negative here. E4's stronger property (all three
/// components summing within 5%) is asserted by tests/obs/telemetry_test.cc.
void CheckBreakdown(const JsonValue* breakdown, const std::string& where) {
  if (breakdown == nullptr) return;
  const JsonValue* spans = breakdown->Find("spans");
  const JsonValue* total = breakdown->Find("mean_total_ns");
  const JsonValue* queue = breakdown->Find("mean_queue_ns");
  const JsonValue* order = breakdown->Find("mean_order_ns");
  const JsonValue* probe = breakdown->Find("mean_probe_ns");
  if (spans == nullptr || total == nullptr || queue == nullptr ||
      order == nullptr) {
    return;  // Key absence already reported by CheckRequired.
  }
  if (spans->AsNumber() <= 0 || total->AsNumber() <= 0) return;
  double sum = queue->AsNumber() + order->AsNumber();
  double error = std::fabs(sum - total->AsNumber()) / total->AsNumber();
  if (error > 0.05) {
    Fail(where + " queue + order components sum to " + std::to_string(sum) +
         " vs total " + std::to_string(total->AsNumber()) + " (" +
         std::to_string(error * 100) + "% off, limit 5%)");
  }
  if (probe != nullptr && probe->AsNumber() < 0) {
    Fail(where + " mean_probe_ns is negative");
  }
}

/// The backend tag must be a known runtime backend, and the wall-clock
/// fields must match it: real numbers when a wall-clock backend measured
/// them ("parallel"), explicit nulls under virtual time ("sim"). Returns
/// true when the run declares the sim backend (callers use this to scope
/// the time-series requirement, which only sim runs can satisfy).
bool CheckBackend(const JsonValue* report, const std::string& where) {
  const JsonValue* backend = report->Find("backend");
  if (backend == nullptr || !backend->is_string()) {
    return true;  // Key absence already reported by CheckRequired.
  }
  std::string name = backend->AsString();
  if (name != "sim" && name != "parallel") {
    Fail(where + " backend '" + name + "' is not one of sim|parallel");
    return true;
  }
  bool wall = name == "parallel";
  for (const char* key : {"wall_makespan_ns", "wall_throughput_tps"}) {
    const JsonValue* value = report->Find(key);
    if (value == nullptr) continue;  // Absence already reported.
    if (wall && !value->is_number()) {
      Fail(where + " " + key + " must be a number under the parallel backend");
    }
    if (!wall && !value->is_null()) {
      Fail(where + " " + key +
           " must be null under the sim backend (virtual time is not wall "
           "time)");
    }
  }
  return !wall;
}

/// A parallel run that sampled at all must carry the inbox-contention
/// telemetry: per-unit blocked_sends / blocked_ns / dequeue_wait_ns columns
/// and the timer-thread lag gauge. These are the wall-clock backend's
/// saturation signals (DESIGN.md §9.2); a parallel artifact without them
/// means the sampler ran against an uninstrumented substrate.
void CheckContentionColumns(const JsonValue* series,
                            const std::string& where) {
  if (series == nullptr) return;
  const JsonValue* metrics = series->Find("metrics");
  if (metrics == nullptr || !metrics->is_object()) return;
  bool timer_lag = false;
  for (const char* suffix :
       {".blocked_sends", ".blocked_ns", ".dequeue_wait_ns"}) {
    bool found = false;
    for (const auto& [name, column] : metrics->members()) {
      if (name == "engine.timer_lag_max_ns") timer_lag = true;
      if (name.size() > std::strlen(suffix) &&
          name.compare(name.size() - std::strlen(suffix), std::string::npos,
                       suffix) == 0) {
        found = true;
      }
    }
    if (!found) {
      Fail(where + " (parallel, sampled) has no column ending '" +
           std::string(suffix) + "'");
    }
  }
  if (!timer_lag) {
    Fail(where + " (parallel, sampled) lacks 'engine.timer_lag_max_ns'");
  }
}

/// A faulted run on the parallel backend (crashes > 0) must carry the
/// recovery observability fields as real numbers: crash/recovery counts,
/// thread respawns, and the measured wall latencies for detection and
/// catch-up. A parallel recovery that never respawned a worker thread means
/// the engine recovered on paper but not in the runtime.
void CheckRecoveryFields(const JsonValue* engine,
                         const std::vector<std::string>& required,
                         bool is_sim, const std::string& where) {
  if (engine == nullptr || !engine->is_object()) return;
  const JsonValue* crashes = engine->Find("crashes");
  if (is_sim || crashes == nullptr || !crashes->is_number() ||
      crashes->AsNumber() <= 0) {
    return;
  }
  for (const std::string& key : required) {
    const JsonValue* value = engine->Find(key);
    if (value == nullptr || !value->is_number()) {
      Fail(where + " (parallel, faulted) lacks numeric recovery field '" +
           key + "'");
    }
  }
  const JsonValue* recoveries = engine->Find("recoveries");
  const JsonValue* respawns = engine->Find("respawns");
  if (recoveries != nullptr && recoveries->is_number() &&
      recoveries->AsNumber() > 0 && respawns != nullptr &&
      respawns->is_number() && respawns->AsNumber() <= 0) {
    Fail(where + " (parallel, faulted) reports " +
         std::to_string(recoveries->AsNumber()) +
         " recoveries but zero worker-thread respawns");
  }
}

/// The timeline section is nullable — an explicit null when the run did not
/// record an execution timeline (the default; the recorder is opt-in via
/// --timeline_out), an object with the recorder's accounting when it did.
/// A recording run owes honest drop accounting: events_recorded /
/// events_dropped as numbers and per-thread ring high-water marks, so a
/// wrapped ring is visible in the artifact rather than silently truncated.
void CheckTimeline(const JsonValue* timeline,
                   const std::vector<std::string>& required,
                   const std::string& where) {
  if (timeline == nullptr) return;  // Absence reported by CheckRequired.
  if (timeline->is_null()) return;  // Timeline off: explicit null is legal.
  if (!timeline->is_object()) {
    Fail(where + " must be null (timeline off) or an object");
    return;
  }
  for (const std::string& key : required) {
    const JsonValue* value = timeline->Find(key);
    if (value == nullptr) {
      Fail(where + " lacks key '" + key + "'");
    }
  }
  const JsonValue* recorded = timeline->Find("events_recorded");
  const JsonValue* dropped = timeline->Find("events_dropped");
  if (recorded != nullptr && !recorded->is_number()) {
    Fail(where + " events_recorded is not a number");
  }
  if (dropped != nullptr && !dropped->is_number()) {
    Fail(where + " events_dropped is not a number");
  }
  if (recorded != nullptr && dropped != nullptr && recorded->is_number() &&
      dropped->is_number() &&
      dropped->AsNumber() > recorded->AsNumber()) {
    Fail(where + " drops exceed recorded events (" +
         std::to_string(dropped->AsNumber()) + " > " +
         std::to_string(recorded->AsNumber()) + ")");
  }
  const JsonValue* hwm = timeline->Find("ring_hwm");
  if (hwm != nullptr && !hwm->is_array()) {
    Fail(where + " ring_hwm is not an array");
  }
}

/// Any invariant violation recorded by the run's auditor fails the smoke
/// test: benches must produce audit-clean runs.
void CheckDiagnostics(const JsonValue* diagnostics, const std::string& where) {
  if (diagnostics == nullptr || !diagnostics->is_object()) return;
  const JsonValue* errors = diagnostics->Find("errors");
  if (errors != nullptr && errors->is_number() && errors->AsNumber() > 0) {
    Fail(where + " records " + std::to_string(errors->AsNumber()) +
         " invariant violation(s)");
  }
}

/// Per-node stage times must partition busy time exactly: the profile
/// exports the residual as unattributed_ns, so drift in the stage
/// accounting shows up here instead of silently skewing attributions.
/// Only sim runs are held to the partition (`strict_residual`): under the
/// parallel backend busy_ns is measured wall time while stage_ns are the
/// cost model's virtual charges, so the residual is meaningless there.
void CheckProfile(const JsonValue* profile, const std::string& where,
                  bool strict_residual) {
  if (profile == nullptr || !profile->is_object()) return;
  const JsonValue* nodes = profile->Find("nodes");
  if (nodes == nullptr || !nodes->is_array()) {
    Fail(where + " has no nodes array");
    return;
  }
  for (const JsonValue& node : nodes->elements()) {
    const JsonValue* scope = node.Find("scope");
    std::string label =
        scope != nullptr && scope->is_string() ? scope->AsString() : "?";
    for (const char* key : {"scope", "kind", "busy_ns", "busy_fraction",
                            "stage_ns", "unattributed_ns", "queue_peak"}) {
      if (node.Find(key) == nullptr) {
        Fail(where + " node " + label + " lacks key '" + key + "'");
      }
    }
    const JsonValue* residual = node.Find("unattributed_ns");
    if (strict_residual && residual != nullptr && residual->is_number() &&
        std::fabs(residual->AsNumber()) > 1.0) {
      Fail(where + " node " + label + " stage times leave " +
           std::to_string(residual->AsNumber()) +
           " ns of busy time unattributed");
    }
  }
}

int Run(const std::string& schema_path, const std::string& artifact_path) {
  Result<JsonValue> schema_result = ReadJsonFile(schema_path);
  if (!schema_result.ok()) {
    Fail("cannot read schema: " + schema_result.status().message());
    return 1;
  }
  Result<JsonValue> artifact_result = ReadJsonFile(artifact_path);
  if (!artifact_result.ok()) {
    Fail("cannot read artifact: " + artifact_result.status().message());
    return 1;
  }
  const JsonValue& schema = *schema_result;
  const JsonValue& artifact = *artifact_result;

  CheckRequired(&artifact, RequiredKeys(schema, "file_required"), "artifact");

  const JsonValue* runs = artifact.Find("runs");
  if (runs == nullptr || !runs->is_array()) {
    Fail("artifact 'runs' is missing or not an array");
    return 1;
  }
  double min_runs = 1;
  if (const JsonValue* v = schema.Find("min_runs")) min_runs = v->AsNumber();
  if (static_cast<double>(runs->size()) < min_runs) {
    Fail("artifact has " + std::to_string(runs->size()) +
         " runs, schema requires at least " + std::to_string(min_runs));
  }

  std::vector<std::string> run_required = RequiredKeys(schema, "run_required");
  std::vector<std::string> report_required =
      RequiredKeys(schema, "report_required");
  std::vector<std::string> engine_required =
      RequiredKeys(schema, "engine_required");
  std::vector<std::string> latency_required =
      RequiredKeys(schema, "latency_required");
  std::vector<std::string> series_required =
      RequiredKeys(schema, "series_required");
  std::vector<std::string> breakdown_required =
      RequiredKeys(schema, "breakdown_required");
  std::vector<std::string> diagnostics_required =
      RequiredKeys(schema, "diagnostics_required");
  std::vector<std::string> profile_required =
      RequiredKeys(schema, "profile_required");
  std::vector<std::string> recovery_required =
      RequiredKeys(schema, "recovery_required");
  std::vector<std::string> timeline_required =
      RequiredKeys(schema, "timeline_required");

  size_t runs_with_series = 0;
  for (size_t i = 0; i < runs->size(); ++i) {
    std::string where = "runs[" + std::to_string(i) + "]";
    const JsonValue& run = runs->at(i);
    CheckRequired(&run, run_required, where);
    const JsonValue* report = run.Find("report");
    if (report == nullptr) continue;
    CheckRequired(report, report_required, where + ".report");
    bool is_sim = CheckBackend(report, where + ".report");
    CheckRequired(report->Find("engine"), engine_required,
                  where + ".report.engine");
    CheckRequired(report->Find("latency"), latency_required,
                  where + ".report.latency");
    CheckRequired(report->Find("series"), series_required,
                  where + ".report.series");
    CheckRequired(report->Find("breakdown"), breakdown_required,
                  where + ".report.breakdown");
    CheckRequired(report->Find("diagnostics"), diagnostics_required,
                  where + ".report.diagnostics");
    CheckRequired(report->Find("profile"), profile_required,
                  where + ".report.profile");
    CheckRecoveryFields(report->Find("engine"), recovery_required, is_sim,
                        where + ".report.engine");
    CheckSeries(report->Find("series"), where + ".report.series");
    CheckBreakdown(report->Find("breakdown"), where + ".report.breakdown");
    CheckDiagnostics(report->Find("diagnostics"),
                     where + ".report.diagnostics");
    CheckProfile(report->Find("profile"), where + ".report.profile", is_sim);
    CheckTimeline(report->Find("timeline"), timeline_required,
                  where + ".report.timeline");

    const JsonValue* series = report->Find("series");
    if (series != nullptr) {
      const JsonValue* timestamps = series->Find("timestamps_ns");
      if (timestamps != nullptr && timestamps->is_array() &&
          timestamps->size() > 0) {
        ++runs_with_series;
        if (!is_sim) {
          CheckContentionColumns(series, where + ".report.series");
        }
      }
    }
  }

  double min_with_series = 0;
  if (const JsonValue* v = schema.Find("min_runs_with_series")) {
    min_with_series = v->AsNumber();
  }
  // Both backends sample: sim on virtual time, parallel on a wall-clock
  // thread. Every artifact owes at least one run with a real series.
  if (static_cast<double>(runs_with_series) < min_with_series) {
    Fail("only " + std::to_string(runs_with_series) +
         " runs carry a non-empty time series, schema requires " +
         std::to_string(min_with_series));
  }

  if (g_errors == 0) {
    std::printf("OK: %s conforms to %s (%zu runs, %zu with series)\n",
                artifact_path.c_str(), schema_path.c_str(), runs->size(),
                runs_with_series);
    return 0;
  }
  std::fprintf(stderr, "%d schema violation(s) in %s\n", g_errors,
               artifact_path.c_str());
  return 1;
}

}  // namespace
}  // namespace bistream

int main(int argc, char** argv) {
  if (argc != 3) {
    std::fprintf(stderr, "usage: %s <schema.json> <artifact.json>\n", argv[0]);
    return 2;
  }
  return bistream::Run(argv[1], argv[2]);
}
