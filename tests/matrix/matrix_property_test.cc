// Parameterized correctness sweep for the join-matrix baseline: every grid
// shape × predicate × skew must match the oracle exactly once (the
// baseline must be trustworthy for the head-to-head benches to mean
// anything).

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

struct MatrixCase {
  const char* name;
  uint32_t rows;
  uint32_t cols;
  PredicateKind predicate;
  double zipf_theta;
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<MatrixCase>& info) {
  return std::string(info.param.name) + "_seed" +
         std::to_string(info.param.seed);
}

class MatrixPropertyTest : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(MatrixPropertyTest, ExactlyOnce) {
  const MatrixCase& param = GetParam();
  MatrixOptions options;
  options.rows = param.rows;
  options.cols = param.cols;
  options.num_routers = 2;
  switch (param.predicate) {
    case PredicateKind::kEqui:
      options.predicate = JoinPredicate::Equi();
      break;
    case PredicateKind::kBand:
      options.predicate = JoinPredicate::Band(2);
      break;
    case PredicateKind::kLessThan:
      options.predicate = JoinPredicate::LessThan();
      break;
    case PredicateKind::kTheta:
      options.predicate = JoinPredicate::Theta(
          "xor-even", [](const Tuple& l, const Tuple& r) {
            return ((l.key ^ r.key) & 1) == 0;
          });
      break;
  }
  options.window = 400 * kEventMilli;
  options.archive_period = 100 * kEventMilli;

  SyntheticWorkloadOptions workload;
  workload.key_domain = param.predicate == PredicateKind::kTheta ? 30 : 60;
  workload.rate_r = RateSchedule::Constant(600);
  workload.rate_s = RateSchedule::Constant(600);
  workload.total_tuples = 2400;
  workload.zipf_theta_r = param.zipf_theta;
  workload.seed = param.seed;

  RunReport report = RunMatrixWorkload(options, workload, /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatrixPropertyTest,
    ::testing::Values(
        MatrixCase{"square_equi", 3, 3, PredicateKind::kEqui, 0.0, 1},
        MatrixCase{"wide_equi", 1, 6, PredicateKind::kEqui, 0.0, 2},
        MatrixCase{"tall_equi", 6, 1, PredicateKind::kEqui, 0.0, 3},
        MatrixCase{"rect_equi", 2, 4, PredicateKind::kEqui, 0.0, 4},
        MatrixCase{"square_band", 2, 2, PredicateKind::kBand, 0.0, 5},
        MatrixCase{"rect_band", 3, 2, PredicateKind::kBand, 0.0, 6},
        MatrixCase{"square_lt", 2, 2, PredicateKind::kLessThan, 0.0, 7},
        MatrixCase{"square_theta", 2, 2, PredicateKind::kTheta, 0.0, 8},
        MatrixCase{"equi_zipf", 3, 3, PredicateKind::kEqui, 1.1, 9},
        MatrixCase{"band_zipf", 2, 3, PredicateKind::kBand, 0.9, 10}),
    CaseName);

}  // namespace
}  // namespace bistream
