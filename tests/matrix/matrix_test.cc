// Join-matrix baseline: grid factorization, replication accounting, and
// result parity with the oracle and the biclique engine.

#include "matrix/matrix_engine.h"

#include <gtest/gtest.h>

#include "harness/runner.h"

namespace bistream {
namespace {

TEST(MatrixOptionsTest, SquareFactorization) {
  EXPECT_EQ(MatrixOptions::Square(16).rows, 4u);
  EXPECT_EQ(MatrixOptions::Square(16).cols, 4u);
  EXPECT_EQ(MatrixOptions::Square(12).rows, 3u);
  EXPECT_EQ(MatrixOptions::Square(12).cols, 4u);
  EXPECT_EQ(MatrixOptions::Square(1).rows, 1u);
  EXPECT_EQ(MatrixOptions::Square(1).cols, 1u);
  // Primes only factor as 1 x p (the matrix model's awkward shape there).
  MatrixOptions p7 = MatrixOptions::Square(7);
  EXPECT_EQ(p7.rows, 1u);
  EXPECT_EQ(p7.cols, 7u);
}

SyntheticWorkloadOptions Workload(uint64_t seed) {
  SyntheticWorkloadOptions workload;
  workload.key_domain = 30;
  workload.rate_r = RateSchedule::Constant(500);
  workload.rate_s = RateSchedule::Constant(500);
  workload.total_tuples = 2000;
  workload.seed = seed;
  return workload;
}

TEST(MatrixEngineTest, ReplicatesStoresByAxisLength) {
  MatrixOptions options;
  options.rows = 2;
  options.cols = 3;
  options.window = 1 * kEventSecond;
  RunReport report = RunMatrixWorkload(options, Workload(1));
  // Every R tuple stored cols times, every S tuple rows times. Input split
  // is ~50/50, so stored ~= n/2*3 + n/2*2 = 2.5n.
  double replication = static_cast<double>(report.engine.stored) /
                       static_cast<double>(report.engine.input_tuples);
  EXPECT_NEAR(replication, 2.5, 0.1);
}

TEST(MatrixEngineTest, MemoryExceedsBicliqueOnSameWorkload) {
  // The paper's core memory claim: matrix replicates state, biclique does
  // not. Compare peak state bytes on identical workloads and unit counts.
  SyntheticWorkloadOptions workload = Workload(2);
  workload.total_tuples = 4000;

  MatrixOptions matrix;
  matrix.rows = 3;
  matrix.cols = 3;
  matrix.window = 1 * kEventSecond;
  RunReport matrix_report = RunMatrixWorkload(matrix, workload);

  BicliqueOptions biclique;
  biclique.joiners_r = 4;
  biclique.joiners_s = 5;  // Same 9 units total.
  biclique.window = 1 * kEventSecond;
  RunReport biclique_report = RunBicliqueWorkload(biclique, workload);

  EXPECT_GT(matrix_report.engine.peak_state_bytes,
            2 * biclique_report.engine.peak_state_bytes);
  // Both must produce the same number of results.
  EXPECT_EQ(matrix_report.results, biclique_report.results);
}

TEST(MatrixEngineTest, BandJoinMatchesOracle) {
  MatrixOptions options;
  options.rows = 2;
  options.cols = 2;
  options.predicate = JoinPredicate::Band(1);
  options.window = 1 * kEventSecond;
  RunReport report = RunMatrixWorkload(options, Workload(3), /*check=*/true);
  EXPECT_GT(report.results, 0u);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(MatrixEngineTest, SingleCellDegenerateGridIsCorrect) {
  MatrixOptions options;
  options.rows = 1;
  options.cols = 1;
  options.window = 1 * kEventSecond;
  RunReport report = RunMatrixWorkload(options, Workload(4), /*check=*/true);
  EXPECT_TRUE(report.check.Clean()) << report.check.ToString();
}

TEST(MatrixEngineTest, CellsExpireState) {
  MatrixOptions options;
  options.rows = 2;
  options.cols = 2;
  options.window = 500 * kEventMilli;
  options.archive_period = 100 * kEventMilli;
  SyntheticWorkloadOptions workload = Workload(5);
  workload.total_tuples = 6000;  // ~6 s >> window.
  RunReport report = RunMatrixWorkload(options, workload);
  EXPECT_GT(report.engine.expired_tuples, 0u);
  // Steady state: retained bytes far below total inserted bytes.
  EXPECT_LT(report.engine.state_bytes, report.engine.peak_state_bytes * 2);
}

TEST(MatrixEngineTest, CellAccessorBounds) {
  EventLoop loop;
  CollectorSink sink;
  MatrixOptions options;
  options.rows = 2;
  options.cols = 3;
  MatrixEngine engine(&loop, options, &sink);
  EXPECT_NE(engine.cell(1, 2), nullptr);
  EXPECT_EQ(engine.rows(), 2u);
  EXPECT_EQ(engine.cols(), 3u);
}

}  // namespace
}  // namespace bistream
