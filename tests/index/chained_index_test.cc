// The chained in-memory index: archive-period sealing, Theorem-1 expiry at
// sub-index granularity, pair-level window exactness, memory accounting.

#include "index/chained_index.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

Tuple Make(RelationId rel, uint64_t id, int64_t key, EventTime ts) {
  Tuple t;
  t.relation = rel;
  t.id = id;
  t.key = key;
  t.ts = ts;
  return t;
}

ChainedIndexOptions Options(EventTime archive, EventTime window,
                            MemoryTracker* tracker = nullptr,
                            IndexKind kind = IndexKind::kHash) {
  ChainedIndexOptions options;
  options.kind = kind;
  options.archive_period = archive;
  options.window = window;
  options.tracker = tracker;
  return options;
}

TEST(ChainedIndexTest, SealsWhenSpanReachesArchivePeriod) {
  ChainedIndex index(Options(/*archive=*/100, /*window=*/1000));
  index.Insert(Make(kRelationR, 1, 1, 0));
  index.Insert(Make(kRelationR, 2, 1, 50));
  EXPECT_EQ(index.num_subindexes(), 1u);
  index.Insert(Make(kRelationR, 3, 1, 100));  // Span now 100 = P: sealed.
  EXPECT_EQ(index.stats().sealed_subindexes, 1u);
  index.Insert(Make(kRelationR, 4, 1, 120));  // Opens a fresh period.
  EXPECT_EQ(index.num_subindexes(), 2u);
  EXPECT_EQ(index.size(), 4u);
}

TEST(ChainedIndexTest, TheoremOneBoundaryIsStrict) {
  // r can be removed once an opposite tuple s arrives with s.ts - r.ts > W.
  ChainedIndex index(Options(/*archive=*/10, /*window=*/100));
  index.Insert(Make(kRelationR, 1, 1, 0));
  index.Insert(Make(kRelationR, 2, 1, 10));  // Span = P: sealed {0, 10}.
  index.Insert(Make(kRelationR, 3, 1, 60));  // New active {60}.

  // s.ts - max_ts == W exactly: NOT expired (strict inequality).
  EXPECT_EQ(index.Expire(110), 0u);
  EXPECT_EQ(index.size(), 3u);
  // One past the boundary: the sealed sub-index (max_ts = 10) goes whole.
  EXPECT_EQ(index.Expire(111), 2u);
  EXPECT_EQ(index.size(), 1u);
  EXPECT_EQ(index.stats().expired_subindexes, 1u);
  EXPECT_EQ(index.stats().expired_tuples, 2u);
}

TEST(ChainedIndexTest, ExpiryDropsWholeSubindexesOldestFirst) {
  ChainedIndex index(Options(/*archive=*/10, /*window=*/50));
  // Three archive periods: ts 0-10, 20-30, 40-50.
  for (EventTime ts : {0, 10, 20, 30, 40, 50}) {
    index.Insert(Make(kRelationR, static_cast<uint64_t>(ts + 1), 1, ts));
  }
  EXPECT_GE(index.num_subindexes(), 3u);
  uint64_t dropped = index.Expire(85);  // Expires everything with max < 35.
  EXPECT_EQ(dropped, 4u);               // ts 0,10,20,30.
  EXPECT_EQ(index.size(), 2u);
}

TEST(ChainedIndexTest, ActiveSubIndexAlsoExpires) {
  ChainedIndex index(Options(/*archive=*/1000, /*window=*/10));
  index.Insert(Make(kRelationR, 1, 1, 0));  // Stays active (span < P).
  EXPECT_EQ(index.Expire(11), 1u);
  EXPECT_EQ(index.size(), 0u);
  // Index stays usable afterwards.
  index.Insert(Make(kRelationR, 2, 1, 20));
  EXPECT_EQ(index.size(), 1u);
}

TEST(ChainedIndexTest, ProbeAppliesPairLevelWindowCheck) {
  // A surviving sub-index can straddle the window boundary; individual
  // stale tuples inside it must still be filtered.
  ChainedIndex index(Options(/*archive=*/1000, /*window=*/100));
  index.Insert(Make(kRelationR, 1, 7, 0));    // Will be outside the window.
  index.Insert(Make(kRelationR, 2, 7, 80));   // Inside.
  std::vector<uint64_t> ids;
  index.ExpireAndProbe(Make(kRelationS, 10, 7, 150), JoinPredicate::Equi(),
                       [&](const Tuple& t) { ids.push_back(t.id); });
  EXPECT_EQ(ids, (std::vector<uint64_t>{2}));
  // The sub-index itself survived (max_ts = 80 within window of 150).
  EXPECT_EQ(index.size(), 2u);
}

TEST(ChainedIndexTest, OutOfOrderProbeSeesNewerStoredTuplesWithinWindow) {
  ChainedIndex index(Options(/*archive=*/1000, /*window=*/100));
  index.Insert(Make(kRelationR, 1, 7, 200));
  std::vector<uint64_t> ids;
  // Probe with an *older* timestamp: |200 - 150| <= 100 so it matches.
  index.ExpireAndProbe(Make(kRelationS, 10, 7, 150), JoinPredicate::Equi(),
                       [&](const Tuple& t) { ids.push_back(t.id); });
  EXPECT_EQ(ids, (std::vector<uint64_t>{1}));
  // And a probe too far in the past does not.
  ids.clear();
  index.ExpireAndProbe(Make(kRelationS, 11, 7, 50), JoinPredicate::Equi(),
                       [&](const Tuple& t) { ids.push_back(t.id); });
  EXPECT_TRUE(ids.empty());
}

TEST(ChainedIndexTest, ProbeSpansChainAndActive) {
  ChainedIndex index(Options(/*archive=*/10, /*window=*/1000));
  index.Insert(Make(kRelationR, 1, 7, 0));
  index.Insert(Make(kRelationR, 2, 7, 20));  // New sub-index.
  index.Insert(Make(kRelationR, 3, 7, 40));  // Another.
  std::vector<uint64_t> ids;
  index.ExpireAndProbe(Make(kRelationS, 10, 7, 50), JoinPredicate::Equi(),
                       [&](const Tuple& t) { ids.push_back(t.id); });
  std::sort(ids.begin(), ids.end());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2, 3}));
}

TEST(ChainedIndexTest, MemoryAccountingBalances) {
  MemoryTracker tracker("test");
  {
    ChainedIndex index(Options(10, 50, &tracker));
    for (EventTime ts = 0; ts < 100; ts += 5) {
      index.Insert(
          Make(kRelationR, static_cast<uint64_t>(ts + 1), ts, ts));
    }
    EXPECT_GT(tracker.current_bytes(), 0);
    EXPECT_EQ(tracker.current_bytes(), static_cast<int64_t>(index.bytes()));
    index.Expire(1000);  // Everything out.
    EXPECT_EQ(tracker.current_bytes(), 0);
    index.Insert(Make(kRelationR, 999, 1, 2000));
    EXPECT_GT(tracker.current_bytes(), 0);
  }
  // Destructor releases the remainder.
  EXPECT_EQ(tracker.current_bytes(), 0);
}

TEST(ChainedIndexTest, SmallerArchivePeriodMeansFinerExpiry) {
  // With P = W the whole window lives in ~1-2 sub-indexes and expiry is
  // coarse; with P = W/10 expiry tracks the window closely. Verify the
  // retained-size gap, which is the E6 trade-off.
  auto run = [](EventTime archive) {
    ChainedIndex index(Options(archive, /*window=*/100));
    size_t max_size = 0;
    for (EventTime ts = 0; ts < 2000; ++ts) {
      index.Insert(Make(kRelationR, static_cast<uint64_t>(ts + 1), 1, ts));
      index.Expire(ts);
      max_size = std::max(max_size, index.size());
    }
    return max_size;
  };
  size_t coarse = run(100);
  size_t fine = run(10);
  EXPECT_LT(fine, coarse);
  EXPECT_LE(fine, 125u);   // ~window + archive period.
  EXPECT_GE(coarse, 150u);  // Up to ~2x window retained.
}

TEST(ChainedIndexTest, StatsCountProbeCandidates) {
  ChainedIndex index(Options(1000, 1000));
  index.Insert(Make(kRelationR, 1, 7, 0));
  index.Insert(Make(kRelationR, 2, 7, 1));
  index.ExpireAndProbe(Make(kRelationS, 10, 7, 2), JoinPredicate::Equi(),
                       [](const Tuple&) {});
  EXPECT_EQ(index.stats().probe_candidates, 2u);
  EXPECT_EQ(index.stats().inserted_tuples, 2u);
}

TEST(ChainedIndexDeathTest, RejectsNonPositiveArchivePeriod) {
  EXPECT_DEATH(ChainedIndex(Options(0, 100)), "archive_period");
}

}  // namespace
}  // namespace bistream
