#include "index/sub_index.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

Tuple Make(RelationId rel, uint64_t id, int64_t key, EventTime ts) {
  Tuple t;
  t.relation = rel;
  t.id = id;
  t.key = key;
  t.ts = ts;
  return t;
}

std::vector<uint64_t> ProbeIds(SubIndex& index, const Tuple& probe,
                               const JoinPredicate& pred) {
  std::vector<uint64_t> ids;
  index.Probe(probe, pred, [&](const Tuple& t) { ids.push_back(t.id); });
  std::sort(ids.begin(), ids.end());
  return ids;
}

// ---- Shared behaviour across every sub-index kind (parameterized). ----

class SubIndexKindTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SubIndexKindTest, EmptyIndexHasSentinelBounds) {
  auto index = MakeSubIndex(GetParam());
  EXPECT_TRUE(index->empty());
  EXPECT_EQ(index->size(), 0u);
  EXPECT_EQ(index->min_ts(), kNoEventTime);
  EXPECT_EQ(index->max_ts(), kNoEventTime);
}

TEST_P(SubIndexKindTest, InsertTracksTimestampBounds) {
  auto index = MakeSubIndex(GetParam());
  index->Insert(Make(kRelationS, 1, 5, 100));
  index->Insert(Make(kRelationS, 2, 5, 50));
  index->Insert(Make(kRelationS, 3, 5, 200));
  EXPECT_EQ(index->size(), 3u);
  EXPECT_EQ(index->min_ts(), 50);
  EXPECT_EQ(index->max_ts(), 200);
}

TEST_P(SubIndexKindTest, EquiProbeFindsAllMatches) {
  auto index = MakeSubIndex(GetParam());
  index->Insert(Make(kRelationS, 1, 7, 1));
  index->Insert(Make(kRelationS, 2, 7, 2));
  index->Insert(Make(kRelationS, 3, 8, 3));
  auto ids = ProbeIds(*index, Make(kRelationR, 10, 7, 4),
                      JoinPredicate::Equi());
  EXPECT_EQ(ids, (std::vector<uint64_t>{1, 2}));
}

TEST_P(SubIndexKindTest, ProbeMissesWhenNoMatch) {
  auto index = MakeSubIndex(GetParam());
  index->Insert(Make(kRelationS, 1, 7, 1));
  auto ids = ProbeIds(*index, Make(kRelationR, 10, 9, 2),
                      JoinPredicate::Equi());
  EXPECT_TRUE(ids.empty());
}

TEST_P(SubIndexKindTest, BandProbeFindsRange) {
  auto index = MakeSubIndex(GetParam());
  for (int64_t k = 0; k < 20; ++k) {
    index->Insert(Make(kRelationS, static_cast<uint64_t>(k + 1), k, k));
  }
  auto ids = ProbeIds(*index, Make(kRelationR, 100, 10, 30),
                      JoinPredicate::Band(2));
  EXPECT_EQ(ids, (std::vector<uint64_t>{9, 10, 11, 12, 13}));  // Keys 8..12.
}

TEST_P(SubIndexKindTest, BytesGrowWithInserts) {
  auto index = MakeSubIndex(GetParam());
  size_t empty = index->bytes();
  index->Insert(Make(kRelationS, 1, 7, 1));
  EXPECT_GT(index->bytes(), empty);
}

INSTANTIATE_TEST_SUITE_P(AllKinds, SubIndexKindTest,
                         ::testing::Values(IndexKind::kHash,
                                           IndexKind::kOrdered,
                                           IndexKind::kScan),
                         [](const auto& info) {
                           return IndexKindToString(info.param);
                         });

// ---- Kind-specific behaviours. ----

TEST(HashSubIndexTest, PointProbeExaminesOnlyOneBucket) {
  HashSubIndex index;
  for (int64_t k = 0; k < 100; ++k) {
    index.Insert(Make(kRelationS, static_cast<uint64_t>(k + 1), k, k));
  }
  uint64_t examined = index.Probe(Make(kRelationR, 500, 42, 0),
                                  JoinPredicate::Equi(),
                                  [](const Tuple&) {});
  EXPECT_EQ(examined, 1u);
}

TEST(OrderedSubIndexTest, RangeProbeExaminesOnlyRange) {
  OrderedSubIndex index;
  for (int64_t k = 0; k < 1000; ++k) {
    index.Insert(Make(kRelationS, static_cast<uint64_t>(k + 1), k, k));
  }
  uint64_t examined = index.Probe(Make(kRelationR, 5000, 500, 0),
                                  JoinPredicate::Band(10),
                                  [](const Tuple&) {});
  EXPECT_EQ(examined, 21u);  // Keys 490..510.
}

TEST(OrderedSubIndexTest, LessThanProbeRespectsDirection) {
  OrderedSubIndex index;  // Stores S.
  for (int64_t k = 0; k < 10; ++k) {
    index.Insert(Make(kRelationS, static_cast<uint64_t>(k + 1), k, k));
  }
  // r.key < s.key: probing with r.key = 6 must see stored keys 7, 8, 9.
  auto ids = ProbeIds(index, Make(kRelationR, 100, 6, 0),
                      JoinPredicate::LessThan());
  EXPECT_EQ(ids, (std::vector<uint64_t>{8, 9, 10}));
}

TEST(ScanSubIndexTest, ThetaProbeScansEverything) {
  ScanSubIndex index;
  for (int64_t k = 0; k < 50; ++k) {
    index.Insert(Make(kRelationS, static_cast<uint64_t>(k + 1), k, k));
  }
  JoinPredicate theta = JoinPredicate::Theta(
      "mod3", [](const Tuple& l, const Tuple& r) {
        return (l.key + r.key) % 3 == 0;
      });
  uint64_t matches = 0;
  uint64_t examined = index.Probe(Make(kRelationR, 500, 0, 0), theta,
                                  [&](const Tuple&) { ++matches; });
  EXPECT_EQ(examined, 50u);
  EXPECT_EQ(matches, 17u);  // Keys 0,3,...,48.
}

TEST(HashSubIndexTest, NonPointProbeFallsBackToScan) {
  HashSubIndex index;
  for (int64_t k = 0; k < 10; ++k) {
    index.Insert(Make(kRelationS, static_cast<uint64_t>(k + 1), k, k));
  }
  auto ids = ProbeIds(index, Make(kRelationR, 100, 5, 0),
                      JoinPredicate::Band(1));
  EXPECT_EQ(ids, (std::vector<uint64_t>{5, 6, 7}));  // Keys 4..6.
}

}  // namespace
}  // namespace bistream
