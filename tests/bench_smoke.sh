#!/bin/sh
# Tier-1 bench smoke: run one bench binary with tiny parameters, then
# validate the BENCH_*.json telemetry artifact it emits against the
# checked-in schema. Usage:
#   bench_smoke.sh <bench_binary> <schema.json> <bench_schema_check> [args...]
set -eu

bench="$1"
schema="$2"
checker="$3"
shift 3

workdir="$(mktemp -d)"
trap 'rm -rf "$workdir"' EXIT

artifact="$workdir/artifact.json"
"$bench" --json_out="$artifact" "$@" > "$workdir/stdout.txt" 2>&1 || {
  echo "bench binary failed; output follows:" >&2
  cat "$workdir/stdout.txt" >&2
  exit 1
}

if [ ! -s "$artifact" ]; then
  echo "bench binary exited cleanly but wrote no artifact at $artifact" >&2
  cat "$workdir/stdout.txt" >&2
  exit 1
fi

exec "$checker" "$schema" "$artifact"
