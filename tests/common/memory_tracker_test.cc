#include "common/memory_tracker.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker t("t");
  t.Allocate(100);
  t.Allocate(50);
  EXPECT_EQ(t.current_bytes(), 150);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Release(120);
  EXPECT_EQ(t.current_bytes(), 30);
  EXPECT_EQ(t.peak_bytes(), 150);
  t.Allocate(10);
  EXPECT_EQ(t.peak_bytes(), 150);
}

TEST(MemoryTrackerTest, RollsUpToParent) {
  MemoryTracker root("root");
  MemoryTracker a("a", &root);
  MemoryTracker b("b", &root);
  a.Allocate(100);
  b.Allocate(200);
  EXPECT_EQ(root.current_bytes(), 300);
  EXPECT_EQ(a.current_bytes(), 100);
  b.Release(50);
  EXPECT_EQ(root.current_bytes(), 250);
}

TEST(MemoryTrackerTest, GrandparentChain) {
  MemoryTracker root("root");
  MemoryTracker mid("mid", &root);
  MemoryTracker leaf("leaf", &mid);
  leaf.Allocate(64);
  EXPECT_EQ(mid.current_bytes(), 64);
  EXPECT_EQ(root.current_bytes(), 64);
}

TEST(MemoryTrackerTest, PeakIsPerTracker) {
  MemoryTracker root("root");
  MemoryTracker a("a", &root);
  MemoryTracker b("b", &root);
  a.Allocate(100);
  a.Release(100);
  b.Allocate(60);
  EXPECT_EQ(root.peak_bytes(), 100);
  EXPECT_EQ(a.peak_bytes(), 100);
  EXPECT_EQ(b.peak_bytes(), 60);
}

TEST(MemoryTrackerTest, ResetPeak) {
  MemoryTracker t("t");
  t.Allocate(500);
  t.Release(400);
  t.ResetPeak();
  EXPECT_EQ(t.peak_bytes(), 100);
}

TEST(MemoryTrackerDeathTest, OverReleaseAborts) {
  MemoryTracker t("t");
  t.Allocate(10);
  EXPECT_DEATH(t.Release(11), "over-release");
}

}  // namespace
}  // namespace bistream
