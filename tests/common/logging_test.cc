#include "common/logging.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(LoggingTest, ParseLogLevelAcceptsCanonicalNames) {
  LogLevel level = LogLevel::kError;
  EXPECT_TRUE(ParseLogLevel("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(ParseLogLevel("info", &level));
  EXPECT_EQ(level, LogLevel::kInfo);
  EXPECT_TRUE(ParseLogLevel("warning", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(ParseLogLevel("error", &level));
  EXPECT_EQ(level, LogLevel::kError);
  // Case-insensitive, with the common "warn" alias.
  EXPECT_TRUE(ParseLogLevel("WARN", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
}

TEST(LoggingTest, ParseLogLevelRejectsUnknownNames) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_FALSE(ParseLogLevel("", &level));
  EXPECT_FALSE(ParseLogLevel("verbose", &level));
  EXPECT_FALSE(ParseLogLevel("DEBUGGING", &level));
  // A failed parse must not clobber the output.
  EXPECT_EQ(level, LogLevel::kInfo);
}

TEST(LoggingTest, LevelFilterIsProcessWide) {
  LogLevel previous = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(previous);
  EXPECT_EQ(GetLogLevel(), previous);
}

}  // namespace
}  // namespace bistream
