#include "common/status.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad window");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.message(), "bad window");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad window");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Cancelled("x").code(), StatusCode::kCancelled);
  EXPECT_EQ(Status::DataLoss("x").code(), StatusCode::kDataLoss);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusTest, CopyIsCheapAndIndependent) {
  Status a = Status::Internal("boom");
  Status b = a;
  EXPECT_EQ(a, b);
  EXPECT_EQ(b.message(), "boom");
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Chain(int x) {
  RETURN_NOT_OK(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_TRUE(Chain(-1).IsInvalidArgument());
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::OutOfRange("not positive");
  return x * 2;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> good = ParsePositive(4);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 8);
  EXPECT_TRUE(good.status().ok());

  Result<int> bad = ParsePositive(0);
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsOutOfRange());
}

Result<int> UseAssignOrReturn(int x) {
  BISTREAM_ASSIGN_OR_RETURN(int doubled, ParsePositive(x));
  return doubled + 1;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> good = UseAssignOrReturn(3);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(*good, 7);
  EXPECT_TRUE(UseAssignOrReturn(-3).status().IsOutOfRange());
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).ValueOrDie();
  EXPECT_EQ(*v, 5);
}

}  // namespace
}  // namespace bistream
