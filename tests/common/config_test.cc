#include "common/config.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

Config Parse(std::vector<std::string> args) {
  std::vector<char*> argv;
  static std::vector<std::string> storage;
  storage = std::move(args);
  argv.push_back(const_cast<char*>("prog"));
  for (auto& s : storage) argv.push_back(s.data());
  auto result = Config::FromArgs(static_cast<int>(argv.size()), argv.data());
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  return *result;
}

TEST(ConfigTest, ParsesKeyValueFlags) {
  Config c = Parse({"--units=8", "--rate=2500.5", "--name=equi"});
  EXPECT_EQ(c.GetInt("units", 0), 8);
  EXPECT_DOUBLE_EQ(c.GetDouble("rate", 0), 2500.5);
  EXPECT_EQ(c.GetString("name", ""), "equi");
}

TEST(ConfigTest, BareFlagIsTrue) {
  Config c = Parse({"--verbose"});
  EXPECT_TRUE(c.GetBool("verbose", false));
  EXPECT_TRUE(c.Has("verbose"));
}

TEST(ConfigTest, FallbacksWhenAbsent) {
  Config c = Parse({});
  EXPECT_EQ(c.GetInt("missing", 42), 42);
  EXPECT_DOUBLE_EQ(c.GetDouble("missing", 1.5), 1.5);
  EXPECT_EQ(c.GetString("missing", "dflt"), "dflt");
  EXPECT_FALSE(c.GetBool("missing", false));
  EXPECT_FALSE(c.Has("missing"));
}

TEST(ConfigTest, BooleanSpellings) {
  Config c = Parse({"--a=true", "--b=0", "--c=yes", "--d=off"});
  EXPECT_TRUE(c.GetBool("a", false));
  EXPECT_FALSE(c.GetBool("b", true));
  EXPECT_TRUE(c.GetBool("c", false));
  EXPECT_FALSE(c.GetBool("d", true));
}

TEST(ConfigTest, IntListParses) {
  Config c = Parse({"--units=4,8,16,32"});
  std::vector<int64_t> units = c.GetIntList("units", {});
  ASSERT_EQ(units.size(), 4u);
  EXPECT_EQ(units[0], 4);
  EXPECT_EQ(units[3], 32);
}

TEST(ConfigTest, IntListFallback) {
  Config c = Parse({});
  std::vector<int64_t> fallback = c.GetIntList("units", {1, 2});
  ASSERT_EQ(fallback.size(), 2u);
  EXPECT_EQ(fallback[1], 2);
}

TEST(ConfigTest, PositionalArgsCollected) {
  Config c = Parse({"run", "--x=1", "fast"});
  ASSERT_EQ(c.positional().size(), 2u);
  EXPECT_EQ(c.positional()[0], "run");
  EXPECT_EQ(c.positional()[1], "fast");
}

TEST(ConfigTest, EmptyFlagNameRejected) {
  const char* argv[] = {"prog", "--=3"};
  auto result = Config::FromArgs(2, const_cast<char**>(argv));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsInvalidArgument());
}

TEST(ConfigTest, FromMapWorks) {
  Config c = Config::FromMap({{"k", "9"}});
  EXPECT_EQ(c.GetInt("k", 0), 9);
}

TEST(ConfigTest, NegativeNumbers) {
  Config c = Parse({"--offset=-7", "--scale=-0.5"});
  EXPECT_EQ(c.GetInt("offset", 0), -7);
  EXPECT_DOUBLE_EQ(c.GetDouble("scale", 0), -0.5);
}

}  // namespace
}  // namespace bistream
