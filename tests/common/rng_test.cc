#include "common/rng.h"

#include <gtest/gtest.h>

namespace bistream {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next64(), b.Next64());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next64() == b.Next64()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformStaysInRange) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.Uniform(17), 17u);
  }
}

TEST(RngTest, UniformIsRoughlyBalanced) {
  Rng rng(9);
  constexpr int kBuckets = 8;
  constexpr int kSamples = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kSamples; ++i) ++counts[rng.Uniform(kBuckets)];
  for (int c : counts) {
    EXPECT_NEAR(c, kSamples / kBuckets, kSamples / kBuckets * 0.1);
  }
}

TEST(RngTest, UniformIntCoversInclusiveBounds) {
  Rng rng(11);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 10000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(13);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, ExponentialHasRequestedMean) {
  Rng rng(17);
  double sum = 0;
  constexpr int kSamples = 50000;
  for (int i = 0; i < kSamples; ++i) sum += rng.NextExponential(250.0);
  EXPECT_NEAR(sum / kSamples, 250.0, 10.0);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(21), b(21);
  Rng fa = a.Fork(1), fb = b.Fork(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(fa.Next64(), fb.Next64());
  Rng fc = Rng(21).Fork(2);
  EXPECT_NE(Rng(21).Fork(1).Next64(), fc.Next64());
}

TEST(RngTest, ReseedRestartsSequence) {
  Rng rng(33);
  uint64_t first = rng.Next64();
  rng.Next64();
  rng.Reseed(33);
  EXPECT_EQ(rng.Next64(), first);
}

TEST(SplitMix64Test, KnownGoodProgression) {
  uint64_t state = 0;
  uint64_t a = SplitMix64(&state);
  uint64_t b = SplitMix64(&state);
  EXPECT_NE(a, b);
  // splitmix64 of seed 0 first output (well-known reference value).
  EXPECT_EQ(a, 0xE220A8397B1DCDAFULL);
}

}  // namespace
}  // namespace bistream
