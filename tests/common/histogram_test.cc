#include "common/histogram.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace bistream {
namespace {

TEST(HistogramTest, EmptyIsZero) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.P99(), 0u);
}

TEST(HistogramTest, SingleValue) {
  Histogram h;
  h.Record(42);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.min(), 42u);
  EXPECT_EQ(h.max(), 42u);
  EXPECT_DOUBLE_EQ(h.mean(), 42.0);
  EXPECT_EQ(h.P50(), 42u);
  EXPECT_EQ(h.P99(), 42u);
}

TEST(HistogramTest, SmallValuesAreExact) {
  Histogram h;
  for (uint64_t v = 0; v < 32; ++v) h.Record(v);
  // Values below the sub-bucket count land in their own bucket.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 31u);
  EXPECT_EQ(h.P50(), 15u);
}

TEST(HistogramTest, QuantilesHaveBoundedRelativeError) {
  Histogram h;
  Rng rng(7);
  std::vector<uint64_t> values;
  for (int i = 0; i < 100000; ++i) {
    uint64_t v = rng.Uniform(10'000'000);
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  for (double q : {0.5, 0.9, 0.99}) {
    uint64_t exact = values[static_cast<size_t>(q * (values.size() - 1))];
    uint64_t approx = h.ValueAtQuantile(q);
    double rel = std::abs(static_cast<double>(approx) -
                          static_cast<double>(exact)) /
                 static_cast<double>(exact);
    EXPECT_LT(rel, 0.05) << "q=" << q << " exact=" << exact
                         << " approx=" << approx;
  }
}

TEST(HistogramTest, MeanAndStddev) {
  Histogram h;
  for (uint64_t v : {2u, 4u, 4u, 4u, 5u, 5u, 7u, 9u}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.stddev(), 2.0, 1e-9);
}

TEST(HistogramTest, RecordManyEqualsRepeatedRecord) {
  Histogram a, b;
  a.RecordMany(1000, 50);
  for (int i = 0; i < 50; ++i) b.Record(1000);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.P50(), b.P50());
  EXPECT_DOUBLE_EQ(a.mean(), b.mean());
}

TEST(HistogramTest, MergeCombines) {
  Histogram a, b;
  for (int i = 0; i < 100; ++i) a.Record(10);
  for (int i = 0; i < 100; ++i) b.Record(1000000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 200u);
  EXPECT_EQ(a.min(), 10u);
  EXPECT_EQ(a.max(), 1000000u);
  EXPECT_LE(a.P50(), 1000u);
  EXPECT_GT(a.P99(), 900000u);
}

TEST(HistogramTest, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.max(), 0u);
  h.Record(7);
  EXPECT_EQ(h.P50(), 7u);
}

TEST(HistogramTest, HandlesHugeValues) {
  Histogram h;
  h.Record(UINT64_MAX);
  h.Record(UINT64_MAX / 2);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_GE(h.ValueAtQuantile(1.0), UINT64_MAX / 2);
}

TEST(HistogramTest, SummaryMentionsCount) {
  Histogram h;
  h.Record(1);
  EXPECT_NE(h.Summary().find("count=1"), std::string::npos);
}

TEST(HistogramTest, QuantileEdgeCasesAreExact) {
  Histogram h;
  // Empty: every quantile is 0, including the endpoints.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 0u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 0u);
  h.Record(100);
  h.Record(100000);
  h.Record(977);
  // q <= 0 is exactly min and q >= 1 exactly max — no bucket rounding at
  // the endpoints, even with out-of-range q.
  EXPECT_EQ(h.ValueAtQuantile(0.0), 100u);
  EXPECT_EQ(h.ValueAtQuantile(-0.5), 100u);
  EXPECT_EQ(h.ValueAtQuantile(1.0), 100000u);
  EXPECT_EQ(h.ValueAtQuantile(2.0), 100000u);
}

TEST(HistogramTest, SnapshotIsImmutablePointInTime) {
  Histogram h;
  h.Record(10);
  h.Record(30);
  Histogram::Snapshot snap = h.TakeSnapshot();
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.min, 10u);
  EXPECT_EQ(snap.max, 30u);
  EXPECT_DOUBLE_EQ(snap.mean, 20.0);
  // The source keeps recording; the snapshot must not move.
  h.Record(1000000);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.max, 30u);
  EXPECT_EQ(h.TakeSnapshot().count, 3u);
}

TEST(HistogramTest, EmptySnapshotIsAllZero) {
  Histogram::Snapshot snap = Histogram().TakeSnapshot();
  EXPECT_EQ(snap.count, 0u);
  EXPECT_EQ(snap.min, 0u);
  EXPECT_EQ(snap.max, 0u);
  EXPECT_EQ(snap.mean, 0.0);
  EXPECT_EQ(snap.stddev, 0.0);
  EXPECT_EQ(snap.p99, 0u);
}

TEST(HistogramTest, MergeTracksMinMaxAcrossEmptySides) {
  Histogram empty, full;
  full.Record(5);
  full.Record(500);
  // Merging into an empty histogram adopts the other's extremes.
  empty.Merge(full);
  EXPECT_EQ(empty.min(), 5u);
  EXPECT_EQ(empty.max(), 500u);
  // Merging an empty histogram must not disturb existing extremes.
  Histogram none;
  full.Merge(none);
  EXPECT_EQ(full.count(), 2u);
  EXPECT_EQ(full.min(), 5u);
  EXPECT_EQ(full.max(), 500u);
}

}  // namespace
}  // namespace bistream
