#include "common/hash.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace bistream {
namespace {

TEST(HashTest, Deterministic) {
  EXPECT_EQ(HashInt64(42), HashInt64(42));
  EXPECT_EQ(HashBytes("stream"), HashBytes("stream"));
}

TEST(HashTest, DistinctInputsDistinctOutputs) {
  std::unordered_set<uint64_t> seen;
  for (int64_t k = 0; k < 100000; ++k) seen.insert(HashInt64(k));
  // fmix64 is a bijection on 64 bits: zero collisions over any input set.
  EXPECT_EQ(seen.size(), 100000u);
}

TEST(HashTest, SequentialKeysSpreadAcrossBuckets) {
  // Partitioning quality: consecutive keys must not cluster mod small n.
  constexpr int kBuckets = 7;
  constexpr int kKeys = 70000;
  int counts[kBuckets] = {};
  for (int64_t k = 0; k < kKeys; ++k) ++counts[HashInt64(k) % kBuckets];
  for (int c : counts) {
    EXPECT_NEAR(c, kKeys / kBuckets, kKeys / kBuckets * 0.05);
  }
}

TEST(HashTest, BytesSensitiveToEveryCharacter) {
  EXPECT_NE(HashBytes("abc"), HashBytes("abd"));
  EXPECT_NE(HashBytes("abc"), HashBytes("abcd"));
  EXPECT_NE(HashBytes(""), HashBytes("a"));
}

TEST(HashTest, CombineIsOrderSensitive) {
  uint64_t a = HashInt64(1), b = HashInt64(2);
  EXPECT_NE(HashCombine(a, b), HashCombine(b, a));
  EXPECT_EQ(HashCombine(a, b), HashCombine(a, b));
}

TEST(HashTest, NegativeKeysHashFine) {
  EXPECT_NE(HashInt64(-1), HashInt64(1));
  EXPECT_EQ(HashInt64(-12345), HashInt64(-12345));
}

}  // namespace
}  // namespace bistream
